"""Figure 5: exact reproduction of the 4x4 metric-comparison example."""

import pytest
from conftest import run_once

from repro.experiments.figures import fig5


def test_fig5(benchmark, report_printer):
    report = run_once(benchmark, fig5)
    report_printer(report)
    good, bad = report.data["good"], report.data["bad"]
    # Exact paper values.
    assert good.max_apl == pytest.approx(10.3375)
    assert bad.max_apl == pytest.approx(11.5375)
    # Both perfectly balanced -> deviation metrics cannot tell them apart.
    assert good.dev_apl == pytest.approx(0.0, abs=1e-9)
    assert bad.dev_apl == pytest.approx(0.0, abs=1e-9)
    assert good.min_max_ratio == pytest.approx(1.0)
    assert bad.min_max_ratio == pytest.approx(1.0)
