"""Tests of coherence-message replay through the NoC."""

import pytest

from repro.cmp.coherence import CoherenceMessage, MsgType
from repro.cmp.hierarchy import CMPMemoryHierarchy
from repro.cmp.chip import ChipConfig
from repro.cmp.replay import packet_for_message, replay_messages
from repro.cmp.trace import PERSONALITIES, generate_trace
from repro.core.latency import Mesh
from repro.noc.network import Network
from repro.noc.packet import TrafficClass


class TestPacketConversion:
    def test_data_messages_are_five_flits(self):
        m = CoherenceMessage(MsgType.DATA, src=1, dst=2, block=5, thread=0)
        p = packet_for_message(m, now=7)
        assert p.length == 5
        assert p.traffic_class == TrafficClass.CACHE_REPLY
        assert p.created_at == 7

    def test_control_messages_are_single_flit(self):
        m = CoherenceMessage(MsgType.GETS, src=1, dst=2, block=5, thread=3)
        p = packet_for_message(m, now=0)
        assert p.length == 1
        assert p.traffic_class == TrafficClass.CACHE_REQUEST
        assert p.thread == 3

    def test_memory_messages_classified(self):
        fetch = CoherenceMessage(MsgType.MEM_FETCH, 1, 0, 5, 0)
        data = CoherenceMessage(MsgType.MEM_DATA, 0, 1, 5, 0)
        assert packet_for_message(fetch, 0).traffic_class == TrafficClass.MEM_REQUEST
        assert packet_for_message(data, 0).traffic_class == TrafficClass.MEM_REPLY

    def test_every_msgtype_convertible(self):
        for mtype in MsgType:
            m = CoherenceMessage(mtype, 0, 1, 2, 0)
            p = packet_for_message(m, 0)
            assert p.length in (1, 5)

    def test_app_tagging(self):
        m = CoherenceMessage(MsgType.GETS, 0, 1, 2, thread=9)
        p = packet_for_message(m, 0, app_of_thread=lambda t: t // 4)
        assert p.app == 2


class TestReplay:
    @pytest.fixture(scope="class")
    def message_stream(self):
        chip = ChipConfig(mesh=Mesh.square(4))
        hierarchy = CMPMemoryHierarchy(chip)
        traces = [
            generate_trace(
                i, PERSONALITIES["canneal"], 500, seed=i,
                base_block=10_000_000 + i * ((1 << 18) + 999),
            )
            for i in range(4)
        ]
        result = hierarchy.run_traces(traces, keep_messages=True)
        return result.messages

    def test_all_messages_delivered(self, message_stream):
        net = Network(Mesh.square(4))
        result = replay_messages(net, message_stream, messages_per_cycle=1.0)
        assert result.messages_replayed == len(message_stream)
        # every non-local message produced a measured latency
        assert result.stats.n_packets == result.messages_replayed

    def test_per_class_latencies_sane(self, message_stream):
        net = Network(Mesh.square(4))
        result = replay_messages(net, message_stream, messages_per_cycle=0.8)
        for cls in result.stats.classes():
            summary = result.stats.by_class(cls)
            assert summary.mean >= 0
            # 4x4 mesh, zero-load max = 4*6+3+4 = 31 plus queuing headroom
            assert summary.mean < 60

    def test_load_pacing(self, message_stream):
        net = Network(Mesh.square(4))
        slow = replay_messages(net, message_stream[:200], messages_per_cycle=0.1)
        assert slow.cycles >= 200 / 0.1 - 20

    def test_invalid_rate(self, message_stream):
        net = Network(Mesh.square(4))
        with pytest.raises(ValueError):
            replay_messages(net, message_stream, messages_per_cycle=0)
