"""Tests of the chip configuration and the trace-driven hierarchy."""

import numpy as np
import pytest

from repro.cmp.chip import CANONICAL_CHIP, ChipConfig, table2_rows
from repro.cmp.hierarchy import CMPMemoryHierarchy, workload_from_traces
from repro.cmp.trace import PERSONALITIES, generate_trace
from repro.core.latency import Mesh


class TestChipConfig:
    def test_canonical_matches_table2(self):
        chip = CANONICAL_CHIP
        assert chip.mesh.rows == chip.mesh.cols == 8
        assert chip.l1.size == 32 * 1024
        assert chip.l2_bank.size == 256 * 1024
        assert chip.memory_latency == 128
        assert chip.mc_tiles == (0, 7, 56, 63)
        assert chip.total_l2_bytes == 16 * 1024 * 1024  # 16 MB shared L2

    def test_flits_per_data_packet(self):
        """64-B data + head flit over 128-bit links = 5 flits (Table 2)."""
        assert CANONICAL_CHIP.flits_per_data_packet() == 5

    def test_table2_rows_render(self):
        rows = table2_rows()
        labels = [r[0] for r in rows]
        assert "Network topology" in labels
        assert ("Network topology", "8x8 mesh") in rows
        assert ("Memory latency", "128 cycles") in rows

    def test_latency_model_uses_corners(self):
        model = CANONICAL_CHIP.latency_model()
        assert model.mc_tiles == (0, 7, 56, 63)

    def test_network_config(self):
        cfg = CANONICAL_CHIP.network_config()
        assert cfg.router.pipeline_depth == 3
        assert cfg.router.buffer_depth == 5
        assert cfg.router.vcs_per_port == 3

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ChipConfig(frequency_ghz=0)
        with pytest.raises(ValueError):
            ChipConfig(memory_latency=0)

    def test_mc_tiles_requires_four(self):
        chip = ChipConfig(n_memory_controllers=2)
        with pytest.raises(ValueError):
            _ = chip.mc_tiles


class TestHierarchy:
    def test_run_traces_basic(self):
        chip = ChipConfig(mesh=Mesh.square(4))
        hierarchy = CMPMemoryHierarchy(chip)
        traces = [
            generate_trace(i, PERSONALITIES["swaptions"], 800, seed=i,
                           base_block=10_000_000 + i * (1 << 18) + i * 333)
            for i in range(4)
        ]
        result = hierarchy.run_traces(traces)
        assert result.cache_requests.shape == (4,)
        assert np.all(result.cache_requests >= 0)
        assert 0 <= result.l1_miss_rate <= 1
        assert 0 <= result.l2_miss_rate <= 1

    def test_duplicate_thread_ids_rejected(self):
        hierarchy = CMPMemoryHierarchy(ChipConfig(mesh=Mesh.square(4)))
        t = generate_trace(0, PERSONALITIES["swaptions"], 100, seed=0)
        with pytest.raises(ValueError):
            hierarchy.run_traces([t, t])

    def test_empty_traces_rejected(self):
        hierarchy = CMPMemoryHierarchy(ChipConfig(mesh=Mesh.square(4)))
        with pytest.raises(ValueError):
            hierarchy.run_traces([])

    def test_messages_kept_on_request(self):
        hierarchy = CMPMemoryHierarchy(ChipConfig(mesh=Mesh.square(4)))
        traces = [generate_trace(0, PERSONALITIES["canneal"], 400, seed=0)]
        result = hierarchy.run_traces(traces, keep_messages=True)
        assert len(result.messages) > 0


class TestWorkloadFromTraces:
    @pytest.fixture(scope="class")
    def workload(self):
        return workload_from_traces(
            ["canneal", "swaptions"],
            threads_per_app=4,
            accesses_per_thread=2500,
            seed=0,
        )

    def test_structure(self, workload):
        assert workload.n_apps == 2
        assert workload.n_threads == 8
        assert workload.applications[0].name == "canneal"

    def test_positive_cache_rates(self, workload):
        assert np.all(workload.cache_rates > 0)

    def test_cache_dominates_memory(self, workload):
        """The paper's regime: cache traffic several times memory traffic."""
        total_c = workload.cache_rates.sum()
        total_m = workload.mem_rates.sum()
        assert total_c > 2 * total_m

    def test_personality_ordering(self, workload):
        """canneal (L1-thrashing hot set) must out-communicate swaptions."""
        canneal, swaptions = workload.applications
        assert canneal.cache_rates.mean() > swaptions.cache_rates.mean()

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            workload_from_traces(["doom"], threads_per_app=2, accesses_per_thread=100)

    def test_duplicate_benchmarks_get_unique_names(self):
        wl = workload_from_traces(
            ["swaptions", "swaptions"], threads_per_app=2, accesses_per_thread=400,
            seed=1,
        )
        names = [a.name for a in wl.applications]
        assert len(set(names)) == 2
