"""Scenario tests of the MOESI directory protocol."""

import pytest

from repro.cmp.address import AddressMap
from repro.cmp.cache import CacheConfig
from repro.cmp.coherence import CoherenceSystem, MsgType


@pytest.fixture
def system():
    """Small CMP: 4 tiles, tiny caches so evictions are easy to trigger."""
    return CoherenceSystem(
        n_tiles=4,
        l1_config=CacheConfig(size=2 * 64 * 2, ways=2, block_bytes=64),  # 2 sets
        l2_config=CacheConfig(size=8 * 64 * 4, ways=4, block_bytes=64),
        address_map=AddressMap(block_bytes=64, n_banks=4),
        mc_of_tile=lambda t: 0,
    )


def types(msgs):
    return [m.mtype for m in msgs]


class TestLoadPath:
    def test_cold_load_fetches_memory_and_grants_e(self, system):
        msgs = system.load(0, 100)
        assert types(msgs) == [
            MsgType.GETS,
            MsgType.MEM_FETCH,
            MsgType.MEM_DATA,
            MsgType.DATA_E,
        ]
        assert system.l1s[0].state_of(100) == "E"
        assert system.counters.mem_requests[0] == 1

    def test_l1_hit_silent(self, system):
        system.load(0, 100)
        assert system.load(0, 100) == []

    def test_warm_l2_load_is_cache_request(self, system):
        system.load(0, 100)
        # Evict from L1 via conflicting fills (same set: stride = n_sets).
        system.load(0, 102)
        system.load(0, 104)
        msgs = system.load(0, 100)
        assert MsgType.MEM_FETCH not in types(msgs)
        assert system.counters.cache_requests[0] >= 1

    def test_load_from_modified_owner_forwards(self, system):
        system.store(0, 100)
        msgs = system.load(1, 100)
        assert MsgType.FWD_GETS in types(msgs)
        assert MsgType.DATA in types(msgs)
        # MOESI signature: owner transitions M -> O, keeps the line.
        assert system.l1s[0].state_of(100) == "O"
        assert system.l1s[1].state_of(100) == "S"

    def test_load_joins_sharers(self, system):
        system.load(0, 100)
        system.load(1, 100)
        msgs = system.load(2, 100)
        entry = system.directory[100]
        assert 2 in entry.sharers or entry.owner == 2


class TestStorePath:
    def test_cold_store_grants_m(self, system):
        msgs = system.store(0, 200)
        assert MsgType.GETX in types(msgs)
        assert MsgType.DATA_X in types(msgs)
        assert system.l1s[0].state_of(200) == "M"

    def test_store_hit_m_silent(self, system):
        system.store(0, 200)
        assert system.store(0, 200) == []

    def test_store_hit_e_silent_upgrade(self, system):
        system.load(0, 200)
        assert system.l1s[0].state_of(200) == "E"
        assert system.store(0, 200) == []
        assert system.l1s[0].state_of(200) == "M"

    def test_store_to_shared_invalidates(self, system):
        system.store(0, 200)     # core 0 owns M
        system.load(1, 200)      # 0 -> O, 1 shares
        msgs = system.store(1, 200)  # 1 upgrades: invalidate owner 0
        assert MsgType.UPGRADE in types(msgs)
        assert MsgType.INV in types(msgs)
        assert system.l1s[0].state_of(200) is None
        assert system.l1s[1].state_of(200) == "M"
        assert system.directory[200].owner == 1

    def test_store_miss_steals_from_owner(self, system):
        system.store(0, 200)
        msgs = system.store(1, 200)
        assert MsgType.FWD_GETX in types(msgs)
        assert system.l1s[0].state_of(200) is None
        assert system.l1s[1].state_of(200) == "M"

    def test_invalidations_fan_out_to_all_sharers(self, system):
        system.load(0, 200)
        system.load(1, 200)
        system.load(2, 200)
        msgs = system.store(3, 200)
        inv_targets = {m.dst for m in msgs if m.mtype == MsgType.INV}
        assert len(inv_targets) >= 2  # all sharers other than the requester


class TestEvictions:
    def test_dirty_l1_eviction_writes_back(self, system):
        system.store(0, 100)
        # Conflict-evict block 100 (2-way, 2-set L1: same-set blocks 102, 104).
        msgs = system.load(0, 102) + system.load(0, 104)
        all_types = types(msgs)
        assert MsgType.WB_DATA in all_types
        assert system.directory.get(100) is None or system.directory[100].owner != 0

    def test_clean_eviction_sends_put(self, system):
        system.load(0, 100)  # E state (clean)
        msgs = system.load(0, 102) + system.load(0, 104)
        assert MsgType.PUT in types(msgs)
        assert MsgType.WB_DATA not in types(msgs)

    def test_l2_dirty_eviction_writes_to_memory(self, system):
        # Fill one L2 bank's sets beyond capacity with dirty blocks.
        # Bank 0 blocks: multiples of 4; L2: 8 sets x 4 ways = 32 blocks.
        msgs = []
        for i in range(40):
            block = i * 4 * 8  # bank 0, same set 0 after local shift? spread:
            msgs += system.store(0, i * 4)
            # evict from L1 quickly so WB_DATA lands in L2
            msgs += system.load(0, i * 4 + 2 * 4)
        has_mem_wb = any(m.mtype == MsgType.MEM_WB for m in msgs)
        assert has_mem_wb

    def test_counters_reset(self, system):
        system.load(0, 100)
        system.reset_counters()
        assert system.counters.mem_requests[0] == 0
        assert system.l1s[0].stats.accesses == 0


class TestAccounting:
    def test_request_rates(self, system):
        system.load(0, 100)   # memory (cold)
        system.load(1, 100)   # on-chip (owner forward)
        c, m = system.request_rates([0, 1], window=2.0)
        assert m[0] == pytest.approx(0.5)
        assert c[1] == pytest.approx(0.5)

    def test_invalid_window(self, system):
        with pytest.raises(ValueError):
            system.request_rates([0], window=0)

    def test_message_flit_sizes(self, system):
        msgs = system.load(0, 100)
        for m in msgs:
            if m.mtype.carries_data:
                assert m.flits == 5
            else:
                assert m.flits == 1

    def test_messages_tagged_with_requester(self, system):
        msgs = system.store(2, 300)
        assert all(m.thread == 2 for m in msgs)

    def test_bank_local_mapping_roundtrip(self, system):
        for block in (0, 5, 63, 1024, 99991):
            home = system._home(block)
            local = system._l2_local(block)
            assert system._l2_global(local, home) == block
