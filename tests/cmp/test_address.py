"""Tests of the address map and bank hashing (paper Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp.address import AddressMap


class TestAddressMap:
    def test_field_widths(self):
        amap = AddressMap(block_bytes=64, n_banks=64)
        assert amap.offset_bits == 6
        assert amap.bank_bits == 6

    def test_paper_example(self):
        """Paper Section II.C: 64-B blocks -> bits 0-5 offset, bits 6-11
        select among 64 banks."""
        amap = AddressMap(block_bytes=64, n_banks=64)
        # Address with bank bits = 0b101010 = 42
        addr = (42 << 6) | 17
        assert amap.bank_of(addr) == 42
        assert amap.block_of(addr) == 42

    def test_consecutive_lines_stripe_across_banks(self):
        """The property the whole paper rests on: consecutive cache lines
        land in consecutive banks (round-robin)."""
        amap = AddressMap(block_bytes=64, n_banks=8)
        banks = [amap.bank_of(line * 64) for line in range(16)]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7]

    def test_bank_hash_uniform(self):
        amap = AddressMap(block_bytes=64, n_banks=16)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 40, size=20_000)
        banks = amap.bank_of(addrs)
        counts = np.bincount(banks, minlength=16)
        assert counts.min() > 0.8 * counts.max()

    def test_vectorised(self):
        amap = AddressMap()
        addrs = np.array([0, 64, 128])
        assert list(amap.bank_of(addrs)) == [0, 1, 2]

    def test_set_index_and_tag(self):
        amap = AddressMap(block_bytes=64, n_banks=4)
        n_sets = 8
        addr = amap.compose(tag=13, set_index=5, bank=2, offset=9, n_sets=n_sets)
        assert amap.tag_of(addr, n_sets) == 13
        assert amap.set_index_of(addr, n_sets) == 5
        assert amap.bank_of(addr) == 2
        assert addr % 64 == 9

    @given(
        tag=st.integers(0, 2**20),
        set_index=st.integers(0, 63),
        bank=st.integers(0, 15),
        offset=st.integers(0, 63),
    )
    @settings(max_examples=100, deadline=None)
    def test_compose_split_roundtrip(self, tag, set_index, bank, offset):
        amap = AddressMap(block_bytes=64, n_banks=16)
        addr = amap.compose(tag, set_index, bank, offset, n_sets=64)
        assert amap.tag_of(addr, 64) == tag
        assert amap.set_index_of(addr, 64) == set_index
        assert amap.bank_of(addr) == bank

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(block_bytes=48)
        with pytest.raises(ValueError):
            AddressMap(n_banks=12)
        amap = AddressMap()
        with pytest.raises(ValueError):
            amap.set_index_of(0, 12)

    def test_compose_bounds(self):
        amap = AddressMap(n_banks=4)
        with pytest.raises(ValueError):
            amap.compose(0, 0, 4, 0, n_sets=8)
        with pytest.raises(ValueError):
            amap.compose(0, 8, 0, 0, n_sets=8)
        with pytest.raises(ValueError):
            amap.compose(0, 0, 0, 64, n_sets=8)
