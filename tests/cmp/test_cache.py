"""Tests of the set-associative LRU cache, including a hypothesis-driven
cross-check against a reference model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp.cache import CacheConfig, SetAssociativeCache


class TestCacheConfig:
    def test_canonical_l1(self):
        c = CacheConfig.l1_canonical()
        assert c.size == 32 * 1024 and c.ways == 2 and c.latency == 1
        assert c.n_sets == 256
        assert c.n_blocks == 512

    def test_canonical_l2_bank(self):
        c = CacheConfig.l2_bank_canonical()
        assert c.size == 256 * 1024 and c.ways == 16 and c.latency == 6
        assert c.n_sets == 256

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size=0, ways=2)
        with pytest.raises(ValueError):
            CacheConfig(size=100, ways=2, block_bytes=64)
        with pytest.raises(ValueError):
            CacheConfig(size=3 * 64 * 2, ways=2, block_bytes=64)  # 3 sets


class TestLRUBehaviour:
    def make(self, ways=2, sets=4):
        return SetAssociativeCache(
            CacheConfig(size=ways * sets * 64, ways=ways, block_bytes=64)
        )

    def test_miss_then_hit(self):
        cache = self.make()
        assert not cache.lookup(10)
        cache.fill(10)
        assert cache.lookup(10)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = self.make(ways=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)  # 0 becomes MRU; 1 is now LRU
        cache.fill(2)  # evicts 1
        assert cache.lookup(0)
        assert not cache.lookup(1)

    def test_dirty_eviction_returns_victim(self):
        cache = self.make(ways=1, sets=1)
        cache.fill(5, dirty=True)
        victim = cache.fill(6)
        assert victim == 5
        assert cache.stats.writebacks == 1

    def test_clean_eviction_returns_none(self):
        cache = self.make(ways=1, sets=1)
        cache.fill(5)
        assert cache.fill(6) is None
        assert cache.stats.evictions == 1

    def test_victim_address_reconstruction(self):
        cache = self.make(ways=1, sets=4)
        block = 4 * 7 + 2  # set 2, tag 7
        cache.fill(block, dirty=True)
        victim = cache.fill(4 * 9 + 2)  # same set, different tag
        assert victim == block

    def test_write_sets_dirty(self):
        cache = self.make(ways=1, sets=1)
        cache.fill(3)
        cache.lookup(3, write=True)
        assert cache.fill(4) == 3  # dirty writeback

    def test_refill_resident_updates_metadata(self):
        cache = self.make(ways=2, sets=1)
        cache.fill(1)
        assert cache.fill(1, dirty=True) is None
        cache.set_state(1, "M")
        assert cache.state_of(1) == "M"

    def test_invalidate(self):
        cache = self.make()
        cache.fill(9)
        assert cache.invalidate(9)
        assert not cache.invalidate(9)
        assert not cache.lookup(9)

    def test_state_of_missing(self):
        cache = self.make()
        assert cache.state_of(1) is None
        with pytest.raises(KeyError):
            cache.set_state(1, "M")

    def test_occupancy(self):
        cache = self.make(ways=2, sets=2)
        for b in range(4):
            cache.fill(b)
        assert cache.occupancy == 4

    def test_no_touch_lookup(self):
        cache = self.make(ways=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0, touch=False)  # does not refresh LRU
        cache.fill(2)  # evicts 0, the LRU despite the lookup
        assert not cache.contains(0)


class _ReferenceLRU:
    """Dict-based reference model: per-set ordered list of tags."""

    def __init__(self, ways, sets):
        self.ways, self.sets = ways, sets
        self.data = {s: [] for s in range(sets)}

    def access(self, block):
        s, tag = block % self.sets, block // self.sets
        present = tag in self.data[s]
        if present:
            self.data[s].remove(tag)
        self.data[s].append(tag)
        if len(self.data[s]) > self.ways:
            self.data[s].pop(0)
        return present


class TestAgainstReferenceModel:
    @given(
        ways=st.integers(1, 4),
        sets_log=st.integers(0, 3),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_hit_miss_sequence_matches(self, ways, sets_log, seed):
        sets = 1 << sets_log
        cache = SetAssociativeCache(
            CacheConfig(size=ways * sets * 64, ways=ways, block_bytes=64)
        )
        ref = _ReferenceLRU(ways, sets)
        rng = np.random.default_rng(seed)
        for block in rng.integers(0, 4 * ways * sets, size=300):
            block = int(block)
            expected = ref.access(block)
            got = cache.lookup(block)
            if not got:
                cache.fill(block)
            assert got == expected
