"""Tests of the synthetic access-trace generator."""

import numpy as np
import pytest

from repro.cmp.trace import (
    PERSONALITIES,
    AccessTrace,
    TracePersonality,
    generate_trace,
)


class TestPersonality:
    def test_known_names(self):
        assert "canneal" in PERSONALITIES
        assert "streamcluster" in PERSONALITIES

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            TracePersonality("x", seq_weight=0, hot_weight=0, random_weight=0)

    def test_invalid_write_fraction(self):
        with pytest.raises(ValueError):
            TracePersonality("x", write_fraction=1.5)

    def test_hot_exceeds_footprint(self):
        with pytest.raises(ValueError):
            TracePersonality("x", hot_blocks=100, footprint_blocks=50)


class TestAccessTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            AccessTrace(0, np.array([1, 2]), np.array([True]))
        with pytest.raises(ValueError):
            AccessTrace(0, np.array([1]), np.array([True]), warmup_len=5)

    def test_measured_length(self):
        t = AccessTrace(0, np.arange(10), np.zeros(10, bool), warmup_len=4)
        assert t.measured_length == 6


class TestGenerateTrace:
    def test_deterministic(self):
        p = PERSONALITIES["canneal"]
        a = generate_trace(0, p, 500, seed=1)
        b = generate_trace(0, p, 500, seed=1)
        assert np.array_equal(a.block_addrs, b.block_addrs)
        assert np.array_equal(a.is_write, b.is_write)

    def test_warmup_sweep_covers_footprint(self):
        p = PERSONALITIES["swaptions"]
        t = generate_trace(0, p, 200, seed=0, base_block=1000)
        sweep = t.block_addrs[: t.warmup_len]
        assert set(range(1000, 1000 + p.footprint_blocks)) <= set(sweep.tolist())
        assert not t.is_write[: t.warmup_len].any()

    def test_no_warmup_option(self):
        p = PERSONALITIES["swaptions"]
        t = generate_trace(0, p, 200, seed=0, warmup_sweep=False)
        assert t.warmup_len == 0
        assert t.length == 200

    def test_addresses_within_regions(self):
        p = PERSONALITIES["blackscholes"]
        base = 50_000
        t = generate_trace(3, p, 2000, seed=2, base_block=base)
        body = t.block_addrs[t.warmup_len :]
        private = (body >= base) & (body < base + p.footprint_blocks)
        stream = body >= (1 << 40)
        assert np.all(private | stream)

    def test_stream_blocks_never_repeat(self):
        p = TracePersonality("s", seq_weight=0, hot_weight=0.5, random_weight=0,
                             stream_weight=0.5, footprint_blocks=64, hot_blocks=8)
        t = generate_trace(0, p, 2000, seed=3)
        stream = t.block_addrs[t.block_addrs >= (1 << 40)]
        assert len(np.unique(stream)) == stream.size

    def test_mode_mix_roughly_matches_weights(self):
        p = TracePersonality(
            "m", seq_weight=0.3, hot_weight=0.5, random_weight=0.0,
            stream_weight=0.2, footprint_blocks=4096, hot_blocks=64, run_length=16,
        )
        t = generate_trace(0, p, 20_000, seed=4, base_block=0, warmup_sweep=False)
        stream_frac = float((t.block_addrs >= (1 << 40)).mean())
        assert 0.15 < stream_frac < 0.25

    def test_write_fraction(self):
        p = TracePersonality("w", write_fraction=0.4, footprint_blocks=1024)
        t = generate_trace(0, p, 5000, seed=5, warmup_sweep=False)
        assert abs(t.is_write.mean() - 0.4) < 0.05

    def test_shared_blocks_injected(self):
        p = PERSONALITIES["swaptions"]
        shared = np.arange(900_000, 900_064)
        t = generate_trace(
            0, p, 3000, seed=6, base_block=0, shared_blocks=shared, shared_fraction=0.3
        )
        body = t.block_addrs[t.warmup_len :]
        frac = float(np.isin(body, shared).mean())
        assert 0.2 < frac < 0.4

    def test_invalid_args(self):
        p = PERSONALITIES["swaptions"]
        with pytest.raises(ValueError):
            generate_trace(0, p, 0)
        with pytest.raises(ValueError):
            generate_trace(0, p, 10, shared_fraction=2.0)

    def test_addresses_read_only(self):
        t = generate_trace(0, PERSONALITIES["swaptions"], 100, seed=7)
        with pytest.raises(ValueError):
            t.block_addrs[0] = 1
