"""Tests of the memory controllers and the quadrant partition."""

import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.cmp.memctrl import MemoryController, MemoryControllerSet


class TestMemoryController:
    def test_fixed_latency(self):
        mc = MemoryController(tile=0, memory_latency=128, issue_interval=4)
        assert mc.request(now=10) == 138

    def test_bandwidth_limit_queues(self):
        mc = MemoryController(tile=0, memory_latency=100, issue_interval=4)
        t1 = mc.request(now=0)
        t2 = mc.request(now=0)
        t3 = mc.request(now=0)
        assert (t1, t2, t3) == (100, 104, 108)
        assert mc.requests_served == 3
        assert mc.average_queue_delay == pytest.approx((0 + 4 + 8) / 3)

    def test_idle_gap_resets_queue(self):
        mc = MemoryController(tile=0, memory_latency=50, issue_interval=4)
        mc.request(now=0)
        assert mc.request(now=100) == 150  # no residual queueing

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryController(tile=0, memory_latency=0)
        with pytest.raises(ValueError):
            MemoryController(tile=0, issue_interval=0)


class TestMemoryControllerSet:
    @pytest.fixture
    def mcs(self):
        model = MeshLatencyModel(Mesh.square(4))
        return MemoryControllerSet(model, memory_latency=100)

    def test_one_controller_per_corner(self, mcs):
        assert set(mcs.controllers) == {0, 3, 12, 15}

    def test_quadrants_partition_chip(self, mcs):
        quadrants = mcs.quadrants()
        all_tiles = sorted(t for tiles in quadrants.values() for t in tiles)
        assert all_tiles == list(range(16))
        # every quadrant holds its own controller tile
        for mc, tiles in quadrants.items():
            assert mc in tiles

    def test_proximity_rule(self, mcs):
        # Tile (1,1) = 5 is nearest to controller 0.
        assert mcs.controller_for(5).tile == 0
        # Tile (2,2) = 10 is nearest to controller 15.
        assert mcs.controller_for(10).tile == 15

    def test_request_routing_and_counting(self, mcs):
        mc_tile, ready = mcs.request(5, now=0)
        assert mc_tile == 0
        assert ready == 100
        assert mcs.total_requests() == 1

    def test_independent_queues(self, mcs):
        # Saturate controller 0; controller 15 stays fast.
        for _ in range(10):
            mcs.request(5, now=0)
        _, ready = mcs.request(10, now=0)
        assert ready == 100
