"""Tests of JSON serialisation and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.problem import Mapping
from repro.core.sss import sort_select_swap
from repro.core.workload import Application, Workload
from repro.io import (
    load_json,
    mapping_from_dict,
    mapping_to_dict,
    result_to_dict,
    save_json,
    workload_from_dict,
    workload_to_dict,
)


@pytest.fixture
def workload():
    return Workload(
        (
            Application("a", [1.0, 2.0], [0.1, 0.2]),
            Application("b", [3.0, 4.0], [0.3, 0.4]),
        ),
        name="roundtrip",
    )


class TestSerialization:
    def test_workload_roundtrip(self, workload):
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.name == workload.name
        assert np.array_equal(restored.cache_rates, workload.cache_rates)
        assert np.array_equal(restored.mem_rates, workload.mem_rates)
        assert [a.name for a in restored.applications] == ["a", "b"]

    def test_mapping_roundtrip(self):
        m = Mapping(np.array([2, 0, 3, 1]))
        restored = mapping_from_dict(mapping_to_dict(m))
        assert np.array_equal(restored.perm, m.perm)

    def test_kind_checked(self, workload):
        data = workload_to_dict(workload)
        with pytest.raises(ValueError):
            mapping_from_dict(data)

    def test_version_checked(self):
        with pytest.raises(ValueError):
            mapping_from_dict({"kind": "mapping", "format": 99, "perm": [0]})

    def test_result_to_dict_is_json_safe(self, small_instance):
        result = sort_select_swap(small_instance)
        doc = result_to_dict(result)
        text = json.dumps(doc)  # must not raise
        assert doc["algorithm"] == "SSS"
        assert len(doc["mapping"]["perm"]) == small_instance.n
        assert doc["evaluation"]["max_apl"] == pytest.approx(result.max_apl)
        assert "config" in doc["extra"]

    def test_save_load_roundtrip(self, tmp_path, workload):
        path = save_json(workload_to_dict(workload), tmp_path / "wl.json")
        assert workload_from_dict(load_json(path)).name == "roundtrip"


class TestCLI:
    def test_map_command(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        code = main(
            ["map", "--workload", "C1", "--algorithm", "global", "--mesh", "4",
             "--output", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Global" in captured
        assert out.exists()

    def test_evaluate_command(self, capsys, tmp_path):
        mapping_path = tmp_path / "m.json"
        save_json(mapping_to_dict(Mapping(np.arange(16))), mapping_path)
        code = main(
            ["evaluate", "--workload", "C1", "--mesh", "4", str(mapping_path)]
        )
        assert code == 0
        assert "max=" in capsys.readouterr().out

    def test_bound_command(self, capsys):
        code = main(
            ["bound", "--workload", "C2", "--mesh", "4",
             "--algorithms", "global", "sss"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lower bound" in out
        assert "gap %" in out

    def test_workload_json_input(self, capsys, tmp_path, workload):
        # 4 threads on a 2x2 mesh from a JSON file.
        wl_path = save_json(workload_to_dict(workload), tmp_path / "wl.json")
        code = main(["map", "--workload", str(wl_path), "--mesh", "2"])
        assert code == 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["map", "--algorithm", "quantum"])

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--workload", "C1", "--mesh", "4", "--algorithm",
             "global", "--warmup", "100", "--measure", "400", "--invariants"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "packets delivered" in out
        assert "delivery:" in out
        assert "invariant sweeps" in out
        assert "fault injection" not in out  # no schedule attached

    def test_simulate_command_with_faults(self, capsys):
        code = main(
            ["simulate", "--workload", "C1", "--mesh", "4", "--measure", "400",
             "--warmup", "50", "--link-down", "5:EAST:100:400",
             "--stall", "2:50:120", "--drop-rate", "0.001"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault injection" in out
        assert "link down events: 1" in out
        assert "stall windows: 1" in out

    def test_simulate_rejects_malformed_fault_specs(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--link-down", "5:EAST:100"])
        with pytest.raises(SystemExit):
            main(["simulate", "--link-down", "5:NOWHERE:0:10"])
        with pytest.raises(SystemExit):
            main(["simulate", "--stall", "banana"])
