"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latency import LatencyParams, Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.workload import Application, Workload
from repro.utils.rng import stable_seed


@pytest.fixture
def rng(request) -> np.random.Generator:
    """A generator seeded stably from the test's node id.

    Every test gets its own reproducible stream: the seed depends only on
    the test's identity, never on execution order or on which other tests
    ran, so "random" tests fail (and replay) deterministically.
    """
    return np.random.default_rng(stable_seed("tests", request.node.nodeid))


@pytest.fixture
def mesh8() -> Mesh:
    return Mesh.square(8)


@pytest.fixture
def model8(mesh8) -> MeshLatencyModel:
    return MeshLatencyModel(mesh8)


@pytest.fixture
def model4() -> MeshLatencyModel:
    return MeshLatencyModel(Mesh.square(4), LatencyParams.paper_figure5())


@pytest.fixture
def figure5_instance(model4) -> OBMInstance:
    """The paper's Figure-5 worked example: 4 apps x 4 threads on 4x4."""
    rates = [0.1, 0.2, 0.3, 0.4]
    apps = tuple(
        Application(f"app{i + 1}", rates, [0.0, 0.0, 0.0, 0.0]) for i in range(4)
    )
    return OBMInstance(model4, Workload(apps, name="fig5"))


@pytest.fixture
def small_instance() -> OBMInstance:
    """A seeded random 4x4 instance with 2 apps of 8 threads each."""
    rng = np.random.default_rng(42)
    model = MeshLatencyModel(Mesh.square(4))
    apps = (
        Application("light", rng.uniform(0.5, 1.5, 8), rng.uniform(0.05, 0.2, 8)),
        Application("heavy", rng.uniform(3.0, 6.0, 8), rng.uniform(0.3, 0.9, 8)),
    )
    return OBMInstance(model, Workload(apps, name="small"))


@pytest.fixture
def c1_instance() -> OBMInstance:
    """The paper's C1 configuration on the canonical 8x8 chip."""
    from repro.workloads.parsec import parsec_config

    model = MeshLatencyModel(Mesh.square(8))
    return OBMInstance(model, parsec_config("C1"))
