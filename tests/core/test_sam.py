"""Tests of the Hungarian-based single-application mapping (Algorithm 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sam import assign_app_to_tiles, solve_sam


def brute_force_sam(c, m, tiles, tc, tm):
    best = np.inf
    for perm in itertools.permutations(tiles):
        perm = np.array(perm)
        total = float((c * tc[perm] + m * tm[perm]).sum())
        best = min(best, total)
    return best / float(c.sum() + m.sum())


class TestSolveSAM:
    def test_heaviest_thread_gets_best_tile(self):
        """With monotone rates and latencies the optimum is anti-sorted."""
        c = np.array([1.0, 2.0, 3.0])
        m = np.zeros(3)
        tc = np.array([10.0, 20.0, 30.0])
        tm = np.zeros(3)
        res = solve_sam(c, m, np.array([0, 1, 2]), tc, tm)
        # thread 2 (heaviest) -> tile 0 (fastest)
        assert list(res.tile_of_thread) == [2, 1, 0]
        assert res.apl == pytest.approx((1 * 30 + 2 * 20 + 3 * 10) / 6)

    def test_subset_of_tiles(self):
        c = np.array([1.0, 5.0])
        m = np.zeros(2)
        tc = np.array([10.0, 99.0, 20.0, 5.0])
        tm = np.zeros(4)
        res = solve_sam(c, m, np.array([1, 3]), tc, tm)
        assert list(res.tile_of_thread) == [1, 3]  # heavy thread on tile 3

    def test_memory_traffic_affects_choice(self):
        # Two tiles: one cache-good/memory-bad, one the reverse; the
        # memory-heavy thread must take the memory-good tile.
        c = np.array([1.0, 1.0])
        m = np.array([0.0, 10.0])
        tc = np.array([10.0, 12.0])
        tm = np.array([50.0, 1.0])
        res = solve_sam(c, m, np.array([0, 1]), tc, tm)
        assert list(res.tile_of_thread) == [0, 1]

    def test_total_latency_consistent(self):
        rng = np.random.default_rng(1)
        c, m = rng.random(5), rng.random(5)
        tc, tm = rng.random(8) * 20, rng.random(8) * 10
        tiles = np.array([0, 2, 4, 6, 7])
        res = solve_sam(c, m, tiles, tc, tm)
        recomputed = float(
            (c * tc[res.tile_of_thread] + m * tm[res.tile_of_thread]).sum()
        )
        assert res.total_latency == pytest.approx(recomputed)
        assert res.apl == pytest.approx(recomputed / (c.sum() + m.sum()))

    def test_zero_volume_app(self):
        res = solve_sam(
            np.zeros(2), np.zeros(2), np.array([0, 1]), np.ones(2), np.ones(2)
        )
        assert res.apl == 0.0

    def test_duplicate_tiles_rejected(self):
        with pytest.raises(ValueError):
            solve_sam(np.ones(2), np.ones(2), np.array([1, 1]), np.ones(2), np.ones(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_sam(np.ones(2), np.ones(3), np.array([0, 1]), np.ones(2), np.ones(2))

    @given(n=st.integers(2, 6), seed=st.integers(0, 5_000))
    @settings(max_examples=60, deadline=None)
    def test_optimal_vs_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        c, m = rng.random(n) * 5, rng.random(n)
        tc, tm = rng.random(10) * 30, rng.random(10) * 15
        tiles = rng.choice(10, size=n, replace=False)
        res = solve_sam(c, m, tiles, tc, tm)
        assert res.apl == pytest.approx(brute_force_sam(c, m, tiles, tc, tm))

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_random_assignment(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        c, m = rng.random(n) * 5, rng.random(n)
        tc, tm = rng.random(16) * 30, rng.random(16) * 15
        tiles = rng.choice(16, size=n, replace=False)
        res = solve_sam(c, m, tiles, tc, tm)
        random_tiles = rng.permutation(tiles)
        random_apl = float(
            (c * tc[random_tiles] + m * tm[random_tiles]).sum() / (c.sum() + m.sum())
        )
        assert res.apl <= random_apl + 1e-9


class TestAssignAppToTiles:
    def test_writes_into_global_perm(self):
        perm = np.full(6, -1, dtype=np.int64)
        c = np.array([1.0, 1.0, 1.0, 2.0, 3.0, 4.0])
        m = np.zeros(6)
        tc = np.arange(6, dtype=float) * 10 + 5
        tm = np.zeros(6)
        apl = assign_app_to_tiles(
            perm, slice(3, 6), c, m, np.array([0, 2, 4]), tc, tm
        )
        assert set(perm[3:6].tolist()) == {0, 2, 4}
        assert np.all(perm[:3] == -1)
        assert apl > 0
        # heaviest thread (rate 4) on the cheapest tile (0)
        assert perm[5] == 0
