"""Tests of the Global / Random / Monte Carlo / SA baselines."""

import itertools

import numpy as np
import pytest

from repro.core.baselines import (
    OBJECTIVES,
    global_mapping,
    monte_carlo,
    random_average,
    random_mapping,
    simulated_annealing,
)
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.metrics import evaluate_mapping
from repro.core.problem import Mapping, OBMInstance
from repro.core.workload import Application, Workload


def tiny_instance(seed: int = 0) -> OBMInstance:
    """2x2 mesh, 2 apps x 2 threads — small enough to brute force."""
    rng = np.random.default_rng(seed)
    model = MeshLatencyModel(Mesh.square(2))
    apps = (
        Application("a", rng.uniform(0.5, 2, 2), rng.uniform(0, 0.5, 2)),
        Application("b", rng.uniform(2, 5, 2), rng.uniform(0, 0.5, 2)),
    )
    return OBMInstance(model, Workload(apps))


def brute_force(instance, key):
    best = None
    for perm in itertools.permutations(range(instance.n)):
        ev = instance.evaluate(Mapping(np.array(perm)))
        value = key(ev)
        if best is None or value < best:
            best = value
    return best


class TestGlobal:
    def test_global_is_exact_g_apl_optimum(self):
        for seed in range(5):
            inst = tiny_instance(seed)
            result = global_mapping(inst)
            assert result.g_apl == pytest.approx(
                brute_force(inst, lambda ev: ev.g_apl)
            )

    def test_global_no_worse_than_everyone_on_g_apl(self, c1_instance):
        glob = global_mapping(c1_instance)
        for other in (
            random_mapping(c1_instance, seed=0),
            monte_carlo(c1_instance, n_samples=200, seed=0),
            simulated_annealing(c1_instance, n_iters=500, seed=0),
        ):
            assert glob.g_apl <= other.g_apl + 1e-9

    def test_result_fields(self, small_instance):
        r = global_mapping(small_instance)
        assert r.algorithm == "Global"
        assert r.runtime_seconds >= 0
        assert "total_latency" in r.extra


class TestRandom:
    def test_random_mapping_seeded(self, small_instance):
        a = random_mapping(small_instance, seed=7)
        b = random_mapping(small_instance, seed=7)
        assert np.array_equal(a.mapping.perm, b.mapping.perm)

    def test_random_average_fields(self, small_instance):
        avg = random_average(small_instance, n_samples=500, seed=1)
        assert avg["max_apl"] >= avg["g_apl"] - 1e-9
        assert avg["dev_apl"] >= 0
        assert avg["n_samples"] == 500

    def test_random_average_matches_manual(self, small_instance):
        """Batched vectorised metrics must equal per-mapping evaluation."""
        inst = small_instance
        avg = random_average(inst, n_samples=64, seed=3, batch=16)
        # Replay the generator's permutation batches and evaluate each
        # mapping individually through the reference evaluator.
        rng = np.random.default_rng(3)
        maxs, devs, gs = [], [], []
        for _ in range(4):
            perms = rng.permuted(
                np.broadcast_to(np.arange(inst.n, dtype=np.int64), (16, inst.n)),
                axis=1,
            )
            for perm in perms:
                ev = inst.evaluate(Mapping(perm))
                maxs.append(ev.max_apl)
                devs.append(ev.dev_apl)
                gs.append(ev.g_apl)
        assert avg["max_apl"] == pytest.approx(np.mean(maxs))
        assert avg["dev_apl"] == pytest.approx(np.mean(devs))
        assert avg["g_apl"] == pytest.approx(np.mean(gs))

    def test_invalid_sample_count(self, small_instance):
        with pytest.raises(ValueError):
            random_average(small_instance, n_samples=0)


class TestMonteCarlo:
    def test_mc_improves_with_samples(self, small_instance):
        few = monte_carlo(small_instance, n_samples=10, seed=5)
        many = monte_carlo(small_instance, n_samples=2000, seed=5)
        assert many.max_apl <= few.max_apl + 1e-9

    def test_mc_best_matches_reported(self, small_instance):
        r = monte_carlo(small_instance, n_samples=100, seed=2)
        assert r.extra["objective_value"] == pytest.approx(r.max_apl)

    def test_mc_seeded_deterministic(self, small_instance):
        a = monte_carlo(small_instance, n_samples=100, seed=9)
        b = monte_carlo(small_instance, n_samples=100, seed=9)
        assert np.array_equal(a.mapping.perm, b.mapping.perm)

    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_named_objectives(self, objective, small_instance):
        r = monte_carlo(small_instance, n_samples=100, seed=1, objective=objective)
        ev = small_instance.evaluate(r.mapping)
        assert r.extra["objective_value"] == pytest.approx(
            OBJECTIVES[objective](ev)
        )

    def test_callable_objective(self, small_instance):
        r = monte_carlo(
            small_instance,
            n_samples=64,
            seed=1,
            objective=lambda ev: ev.max_apl + ev.dev_apl,
        )
        assert sorted(r.mapping.perm.tolist()) == list(range(small_instance.n))

    def test_unknown_objective_rejected(self, small_instance):
        with pytest.raises(ValueError):
            monte_carlo(small_instance, n_samples=10, objective="latency")

    def test_dev_objective_exhibits_figure5_pathology(self, figure5_instance):
        """Optimising dev-APL can 'balance' at a bad level (Section III.A):
        its g-APL should be no better than the max-APL optimiser's."""
        dev = monte_carlo(figure5_instance, n_samples=3000, seed=4, objective="dev_apl")
        mx = monte_carlo(figure5_instance, n_samples=3000, seed=4, objective="max_apl")
        assert dev.dev_apl <= mx.dev_apl + 1e-9
        assert dev.g_apl >= mx.g_apl - 1e-9


class TestSimulatedAnnealing:
    def test_sa_valid_permutation(self, small_instance):
        r = simulated_annealing(small_instance, n_iters=500, seed=0)
        assert sorted(r.mapping.perm.tolist()) == list(range(small_instance.n))

    def test_sa_seeded_deterministic(self, small_instance):
        a = simulated_annealing(small_instance, n_iters=300, seed=11)
        b = simulated_annealing(small_instance, n_iters=300, seed=11)
        assert np.array_equal(a.mapping.perm, b.mapping.perm)

    def test_sa_beats_single_random(self, c1_instance):
        sa = simulated_annealing(c1_instance, n_iters=3000, seed=0)
        rnd = random_mapping(c1_instance, seed=0)
        assert sa.max_apl < rnd.evaluation.max_apl

    def test_sa_reports_best_seen(self, small_instance):
        r = simulated_annealing(small_instance, n_iters=500, seed=3)
        assert r.extra["objective_value"] == pytest.approx(r.max_apl)
        assert r.extra["accepted_moves"] >= 0

    def test_sa_restarts(self, small_instance):
        r = simulated_annealing(small_instance, n_iters=400, seed=1, restarts=4)
        assert r.extra["restarts"] == 4
        assert sorted(r.mapping.perm.tolist()) == list(range(small_instance.n))

    def test_sa_explicit_temperature(self, small_instance):
        r = simulated_annealing(
            small_instance, n_iters=300, seed=1, initial_temperature=1.0
        )
        assert sorted(r.mapping.perm.tolist()) == list(range(small_instance.n))

    def test_invalid_parameters(self, small_instance):
        with pytest.raises(ValueError):
            simulated_annealing(small_instance, n_iters=0)
        with pytest.raises(ValueError):
            simulated_annealing(small_instance, n_iters=10, restarts=0)

    def test_sa_incremental_state_consistency(self, small_instance):
        """The final reported evaluation must match re-evaluating the
        returned mapping from scratch (guards the incremental deltas)."""
        r = simulated_annealing(small_instance, n_iters=2000, seed=7)
        fresh = evaluate_mapping(
            small_instance.workload,
            r.mapping.perm,
            small_instance.tc,
            small_instance.tm,
        )
        assert r.max_apl == pytest.approx(fresh.max_apl)
