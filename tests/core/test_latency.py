"""Tests of the analytic latency model against the paper's own numbers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import LatencyParams, Mesh, MeshLatencyModel, corner_tiles


class TestLatencyParams:
    def test_defaults_positive(self):
        p = LatencyParams()
        assert p.per_hop == pytest.approx(p.td_r + p.td_w + p.td_q)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyParams(td_r=-1)
        with pytest.raises(ValueError):
            LatencyParams(td_s=-0.1)

    def test_with_(self):
        p = LatencyParams().with_(td_q=0.0)
        assert p.td_q == 0.0
        assert p.td_r == LatencyParams().td_r

    def test_figure5_parameters(self):
        p = LatencyParams.paper_figure5()
        assert (p.td_r, p.td_w, p.td_q, p.td_s) == (3.0, 1.0, 0.0, 1.0)


class TestMesh:
    def test_tile_numbering_matches_equation_1(self):
        """Paper eq. 1: k = (i-1)*n + j, e.g. tile 29 of an 8x8 mesh sits
        at row 4, column 5 (1-based)."""
        mesh = Mesh.square(8)
        k = mesh.from_tile_number(29)
        row, col = mesh.coords(k)
        assert (row + 1, col + 1) == (4, 5)
        assert mesh.tile_number(k) == 29

    def test_coords_tile_roundtrip(self):
        mesh = Mesh(3, 5)
        for k in range(mesh.n_tiles):
            r, c = mesh.coords(k)
            assert mesh.tile(int(r), int(c)) == k

    def test_hops_is_manhattan(self):
        mesh = Mesh.square(4)
        assert mesh.hops(0, 15) == 6
        assert mesh.hops(5, 5) == 0
        assert mesh.hops(0, 3) == 3

    def test_hop_matrix_symmetric_zero_diagonal(self):
        mesh = Mesh(3, 4)
        h = mesh.hop_matrix
        assert np.array_equal(h, h.T)
        assert np.all(np.diag(h) == 0)

    def test_neighbors_counts(self):
        mesh = Mesh.square(3)
        assert len(mesh.neighbors(4)) == 4  # centre
        assert len(mesh.neighbors(0)) == 2  # corner
        assert len(mesh.neighbors(1)) == 3  # edge

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)

    def test_tile_bounds(self):
        mesh = Mesh.square(2)
        with pytest.raises(IndexError):
            mesh.tile(2, 0)
        with pytest.raises(IndexError):
            mesh.tile_number(4)
        with pytest.raises(IndexError):
            mesh.from_tile_number(0)

    def test_as_grid_shape(self):
        mesh = Mesh(2, 3)
        grid = mesh.as_grid(np.arange(6))
        assert grid.shape == (2, 3)
        with pytest.raises(ValueError):
            mesh.as_grid(np.arange(5))

    @given(rows=st.integers(1, 6), cols=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_hop_triangle_inequality(self, rows, cols):
        mesh = Mesh(rows, cols)
        h = mesh.hop_matrix
        n = mesh.n_tiles
        # Manhattan distance obeys the triangle inequality.
        assert np.all(h[:, :, None] + h[None, :, :] >= h[:, None, :].reshape(n, 1, n))


class TestHopAverages:
    def test_paper_hc_values_8x8(self, model8):
        """Paper Section II.C: HC_1 = 7 (corner), HC_28 = 4 (centre)."""
        assert model8.cache_hops[model8.mesh.from_tile_number(1)] == pytest.approx(7.0)
        assert model8.cache_hops[model8.mesh.from_tile_number(28)] == pytest.approx(4.0)

    def test_hc_centre_smaller_than_corner(self, model8):
        hc = model8.mesh.as_grid(model8.cache_hops)
        assert hc[3, 3] < hc[0, 0]
        assert hc[3, 4] == hc[3, 3]  # central symmetry

    def test_hm_matches_equation_4(self, model8):
        """HM_k = min(i-1, n-i) + min(j-1, n-j) with corner controllers."""
        n = 8
        for k in range(64):
            i, j = (int(x) + 1 for x in model8.mesh.coords(k))  # 1-based
            expected = min(i - 1, n - i) + min(j - 1, n - j)
            assert model8.mem_hops[k] == expected

    def test_hm_zero_at_controllers(self, model8):
        for mc in model8.mc_tiles:
            assert model8.mem_hops[mc] == 0

    def test_mesh_symmetry_of_hc(self, model8):
        hc = model8.mesh.as_grid(model8.cache_hops)
        assert np.allclose(hc, hc[::-1, :])
        assert np.allclose(hc, hc[:, ::-1])
        assert np.allclose(hc, hc.T)


class TestLatencyArrays:
    def test_figure5_tc_values(self, model4):
        """TC on the 4x4 example: corner 12.9375, edge 10.9375, centre 8.9375.

        These are the exact values that make the paper's Figure-5 APLs come
        out to 10.3375 / 11.5375 cycles.
        """
        tc = model4.mesh.as_grid(model4.tc)
        assert tc[0, 0] == pytest.approx(12.9375)
        assert tc[0, 1] == pytest.approx(10.9375)
        assert tc[1, 1] == pytest.approx(8.9375)

    def test_tc_formula(self, model8):
        p = model8.params
        n = model8.n_tiles
        expected = model8.cache_hops * p.per_hop + p.td_s * (n - 1) / n
        assert np.allclose(model8.tc, expected)

    def test_tm_serialization_skipped_at_controller(self, model8):
        assert model8.tm[0] == 0.0  # corner controller tile: no network at all
        inner = model8.mesh.tile(1, 1)
        p = model8.params
        assert model8.tm[inner] == pytest.approx(2 * p.per_hop + p.td_s)

    def test_arrays_read_only(self, model8):
        with pytest.raises(ValueError):
            model8.tc[0] = 1.0
        with pytest.raises(ValueError):
            model8.mem_hops[0] = 3.0

    def test_grids(self, model8):
        assert model8.tc_grid().shape == (8, 8)
        assert model8.tm_grid().shape == (8, 8)


class TestMemoryControllerPlacement:
    def test_default_corners(self, mesh8):
        assert corner_tiles(mesh8) == (0, 7, 56, 63)

    def test_custom_placement_changes_tm(self, mesh8):
        centre = (mesh8.tile(3, 3), mesh8.tile(3, 4), mesh8.tile(4, 3), mesh8.tile(4, 4))
        model = MeshLatencyModel(mesh8, mc_tiles=centre)
        assert model.mem_hops[mesh8.tile(3, 3)] == 0
        assert model.mem_hops[0] == 6  # corner now far from controllers

    def test_single_controller(self, mesh8):
        model = MeshLatencyModel(mesh8, mc_tiles=(0,))
        assert np.array_equal(model.mem_hops, model8_hops := mesh8.hop_matrix[:, 0])

    def test_duplicate_controllers_rejected(self, mesh8):
        with pytest.raises(ValueError):
            MeshLatencyModel(mesh8, mc_tiles=(0, 0))

    def test_out_of_range_controller_rejected(self, mesh8):
        with pytest.raises(IndexError):
            MeshLatencyModel(mesh8, mc_tiles=(64,))

    def test_empty_controllers_rejected(self, mesh8):
        with pytest.raises(ValueError):
            MeshLatencyModel(mesh8, mc_tiles=())

    def test_nearest_mc_quadrants(self, model8):
        # Top-left quadrant tiles route to controller 0.
        assert model8.nearest_mc(model8.mesh.tile(1, 2)) == 0
        assert model8.nearest_mc(model8.mesh.tile(1, 6)) == 7
        assert model8.nearest_mc(model8.mesh.tile(6, 1)) == 56
        assert model8.nearest_mc(model8.mesh.tile(6, 6)) == 63

    def test_int_shorthand_for_square_mesh(self):
        model = MeshLatencyModel(4)
        assert model.n_tiles == 16

    def test_with_params(self, model8):
        fast = model8.with_params(LatencyParams(td_r=1, td_w=1, td_q=0, td_s=1))
        assert fast.params.per_hop == 2
        assert fast.mc_tiles == model8.mc_tiles
        # Half-ish the per-hop cost shrinks TC accordingly.
        assert fast.tc.max() < model8.tc.max()
