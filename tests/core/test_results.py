"""Tests of the MappingResult container and algorithm-facing contracts."""

import numpy as np
import pytest

from repro.core.baselines import global_mapping, random_mapping
from repro.core.results import MappingResult
from repro.core.sss import sort_select_swap


class TestMappingResult:
    def test_metric_shortcuts(self, small_instance):
        r = global_mapping(small_instance)
        assert r.max_apl == r.evaluation.max_apl
        assert r.dev_apl == r.evaluation.dev_apl
        assert r.g_apl == r.evaluation.g_apl

    def test_str_contains_essentials(self, small_instance):
        r = random_mapping(small_instance, seed=0)
        text = str(r)
        assert "Random" in text
        assert "max-APL" in text
        assert "ms" in text

    def test_extra_defaults_empty(self, small_instance):
        r = random_mapping(small_instance, seed=0)
        assert isinstance(r.extra, dict)

    def test_runtime_nonnegative_for_all_algorithms(self, small_instance):
        for result in (
            global_mapping(small_instance),
            random_mapping(small_instance, seed=1),
            sort_select_swap(small_instance),
        ):
            assert result.runtime_seconds >= 0

    def test_results_immutable_mapping(self, small_instance):
        r = sort_select_swap(small_instance)
        with pytest.raises(ValueError):
            r.mapping.perm[0] = 5

    def test_evaluation_matches_fresh_computation(self, small_instance):
        """Algorithms must return evaluations consistent with re-evaluating
        their mapping on the instance — no stale incremental state."""
        for result in (
            global_mapping(small_instance),
            sort_select_swap(small_instance),
        ):
            fresh = small_instance.evaluate(result.mapping)
            assert result.max_apl == pytest.approx(fresh.max_apl)
            assert result.g_apl == pytest.approx(fresh.g_apl)
            assert np.allclose(
                result.evaluation.apls, fresh.apls, equal_nan=True
            )
