"""Tests of the APL metrics (paper eq. 5 and Section III.A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    app_apls,
    app_latency_sums,
    dev_apl,
    evaluate_mapping,
    g_apl,
    max_apl,
    min_max_ratio,
)
from repro.core.workload import Application, Workload


@pytest.fixture
def wl():
    return Workload(
        (
            Application("a", [1.0, 3.0], [0.5, 0.5]),
            Application("b", [2.0, 2.0], [1.0, 0.0]),
        )
    )


@pytest.fixture
def arrays():
    tc = np.array([10.0, 20.0, 30.0, 40.0])
    tm = np.array([5.0, 4.0, 3.0, 2.0])
    return tc, tm


class TestEquation5:
    def test_hand_computed_apl(self, wl, arrays):
        """Verify eq. 5 against an explicit hand calculation."""
        tc, tm = arrays
        mapping = np.array([0, 1, 2, 3])
        # app a: threads 0,1 -> tiles 0,1
        #   latency = 1*10 + 0.5*5 + 3*20 + 0.5*4 = 74.5; volume = 5
        # app b: threads 2,3 -> tiles 2,3
        #   latency = 2*30 + 1*3 + 2*40 + 0*2 = 143; volume = 5
        apls = app_apls(wl, mapping, tc, tm)
        assert apls[0] == pytest.approx(74.5 / 5.0)
        assert apls[1] == pytest.approx(143.0 / 5.0)

    def test_latency_sums(self, wl, arrays):
        tc, tm = arrays
        sums = app_latency_sums(wl, np.array([0, 1, 2, 3]), tc, tm)
        assert sums == pytest.approx([74.5, 143.0])

    def test_mapping_changes_apl(self, wl, arrays):
        tc, tm = arrays
        a1 = app_apls(wl, np.array([0, 1, 2, 3]), tc, tm)
        a2 = app_apls(wl, np.array([3, 2, 1, 0]), tc, tm)
        assert a1[0] != a2[0]


class TestAggregates:
    def test_max_dev_g(self, wl, arrays):
        tc, tm = arrays
        mapping = np.array([0, 1, 2, 3])
        apls = app_apls(wl, mapping, tc, tm)
        assert max_apl(wl, mapping, tc, tm) == pytest.approx(apls.max())
        assert dev_apl(wl, mapping, tc, tm) == pytest.approx(apls.std())
        # g-APL = total latency / total volume, NOT mean of per-app APLs.
        assert g_apl(wl, mapping, tc, tm) == pytest.approx((74.5 + 143.0) / 10.0)

    def test_min_max_ratio(self, wl, arrays):
        tc, tm = arrays
        mapping = np.array([0, 1, 2, 3])
        apls = app_apls(wl, mapping, tc, tm)
        assert min_max_ratio(wl, mapping, tc, tm) == pytest.approx(
            apls.min() / apls.max()
        )

    def test_equal_apls_give_zero_dev_and_unit_ratio(self, arrays):
        tc, tm = arrays
        wl = Workload(
            (
                Application("a", [1.0], [0.0]),
                Application("b", [1.0], [0.0]),
            )
        )
        mapping = np.array([0, 1])
        tc_flat = np.array([10.0, 10.0])
        tm_flat = np.zeros(2)
        assert dev_apl(wl, mapping, tc_flat, tm_flat) == 0.0
        assert min_max_ratio(wl, mapping, tc_flat, tm_flat) == 1.0


class TestIdleApps:
    def test_idle_app_excluded(self, arrays):
        tc, tm = arrays
        wl = Workload(
            (
                Application("real", [1.0, 1.0], [0.0, 0.0]),
                Application("_idle", [0.0, 0.0], [0.0, 0.0]),
            )
        )
        mapping = np.array([0, 1, 2, 3])
        apls = app_apls(wl, mapping, tc, tm)
        assert np.isnan(apls[1])
        # Aggregates ignore the idle app instead of propagating NaN.
        assert not np.isnan(max_apl(wl, mapping, tc, tm))
        assert dev_apl(wl, mapping, tc, tm) == pytest.approx(0.0)

    def test_all_idle_rejected(self, arrays):
        tc, tm = arrays
        wl = Workload((Application("_idle", [0.0, 0.0], [0.0, 0.0]),))
        with pytest.raises(ValueError):
            max_apl(wl, np.array([0, 1]), tc, tm)


class TestEvaluateMapping:
    def test_consistent_with_individual_metrics(self, wl, arrays):
        tc, tm = arrays
        mapping = np.array([2, 0, 3, 1])
        ev = evaluate_mapping(wl, mapping, tc, tm)
        assert ev.max_apl == pytest.approx(max_apl(wl, mapping, tc, tm))
        assert ev.dev_apl == pytest.approx(dev_apl(wl, mapping, tc, tm))
        assert ev.g_apl == pytest.approx(g_apl(wl, mapping, tc, tm))
        assert ev.min_max_ratio == pytest.approx(min_max_ratio(wl, mapping, tc, tm))
        assert np.allclose(ev.apls, app_apls(wl, mapping, tc, tm))

    def test_str_renders(self, wl, arrays):
        tc, tm = arrays
        ev = evaluate_mapping(wl, np.array([0, 1, 2, 3]), tc, tm)
        assert "max=" in str(ev)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_apl_invariance_under_within_app_permutation(self, seed):
        """Permuting a mapping *within* one application's threads only
        permutes which thread sits where; per-app APL is a rate-weighted
        sum, so it must change consistently — and permuting threads
        together with their tiles changes nothing."""
        rng = np.random.default_rng(seed)
        wl = Workload(
            (
                Application("a", rng.uniform(0.1, 5, 4), rng.uniform(0, 1, 4)),
                Application("b", rng.uniform(0.1, 5, 4), rng.uniform(0, 1, 4)),
            )
        )
        tc = rng.uniform(5, 30, 8)
        tm = rng.uniform(0, 20, 8)
        mapping = rng.permutation(8)
        base = app_apls(wl, mapping, tc, tm)
        # g-APL is invariant to which app labels threads carry, given the
        # same thread->tile pairs.
        assert g_apl(wl, mapping, tc, tm) == pytest.approx(
            float(
                (wl.cache_rates * tc[mapping] + wl.mem_rates * tm[mapping]).sum()
                / (wl.cache_rates + wl.mem_rates).sum()
            )
        )
        assert np.all(np.isfinite(base))
