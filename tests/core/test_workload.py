"""Tests of the Application/Workload model."""

import numpy as np
import pytest

from repro.core.workload import Application, Workload


def make_workload():
    return Workload(
        (
            Application("a", [1.0, 2.0], [0.1, 0.2]),
            Application("b", [3.0, 4.0, 5.0], [0.3, 0.4, 0.5]),
        ),
        name="wl",
    )


class TestApplication:
    def test_basic_properties(self):
        app = Application("x", [1.0, 2.0], [0.5, 0.5])
        assert app.n_threads == 2
        assert app.total_rate == pytest.approx(4.0)
        assert not app.is_idle
        assert app.cache_to_mem_ratio == pytest.approx(3.0)

    def test_zero_memory_ratio_infinite(self):
        app = Application("x", [1.0], [0.0])
        assert app.cache_to_mem_ratio == float("inf")

    def test_idle(self):
        app = Application("idle", [0.0, 0.0], [0.0, 0.0])
        assert app.is_idle

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Application("x", [1.0, 2.0], [0.1])

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            Application("x", [-1.0], [0.0])

    def test_nan_rates_rejected(self):
        with pytest.raises(ValueError):
            Application("x", [float("nan")], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Application("x", [], [])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Application("x", [[1.0]], [[0.1]])

    def test_rates_read_only(self):
        app = Application("x", [1.0], [0.1])
        with pytest.raises(ValueError):
            app.cache_rates[0] = 5.0

    def test_uniform_constructor(self):
        app = Application.uniform("u", 4, 2.0, 0.5)
        assert np.all(app.cache_rates == 2.0)
        assert np.all(app.mem_rates == 0.5)


class TestWorkload:
    def test_thread_indexing_matches_paper(self):
        """Application i owns threads N_{i-1}..N_i-1 (paper Section III.B)."""
        wl = make_workload()
        assert wl.n_threads == 5
        assert list(wl.boundaries) == [0, 2, 5]
        assert wl.thread_slice(0) == slice(0, 2)
        assert wl.thread_slice(1) == slice(2, 5)
        assert list(wl.app_of_thread) == [0, 0, 1, 1, 1]

    def test_concatenated_rates(self):
        wl = make_workload()
        assert list(wl.cache_rates) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert list(wl.mem_rates) == [0.1, 0.2, 0.3, 0.4, 0.5]

    def test_app_volumes(self):
        wl = make_workload()
        assert wl.app_volumes == pytest.approx([3.3, 13.2])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Workload(
                (Application("a", [1.0], [0.0]), Application("a", [1.0], [0.0]))
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Workload(())

    def test_padding_adds_idle_app(self):
        wl = make_workload().padded_to(8)
        assert wl.n_threads == 8
        assert wl.applications[-1].is_idle
        assert list(wl.active_apps) == [0, 1]

    def test_padding_noop_when_full(self):
        wl = make_workload()
        assert wl.padded_to(5) is wl

    def test_padding_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_workload().padded_to(3)

    def test_without_idle_roundtrip(self):
        wl = make_workload()
        padded = wl.padded_to(10)
        restored = padded.without_idle()
        assert restored.n_apps == wl.n_apps
        assert restored.n_threads == wl.n_threads

    def test_sorted_by_traffic(self):
        wl = Workload(
            (
                Application("heavy", [10.0], [1.0]),
                Application("light", [1.0], [0.1]),
            )
        ).sorted_by_traffic()
        assert wl.applications[0].name == "light"
        assert wl.applications[1].name == "heavy"

    def test_summary_mentions_every_app(self):
        text = make_workload().summary()
        assert "a:" in text and "b:" in text

    def test_arrays_read_only(self):
        wl = make_workload()
        with pytest.raises(ValueError):
            wl.cache_rates[0] = 9.0
        with pytest.raises(ValueError):
            wl.boundaries[0] = 1
