"""Non-square meshes and cross-implementation metric consistency.

The paper evaluates an 8x8 chip, but nothing in the formulation requires
a square mesh; these tests pin down that the whole stack — latency model,
algorithms, batched metric evaluation — generalises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import _batched_metrics, global_mapping
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.metrics import evaluate_mapping
from repro.core.problem import Mapping, OBMInstance
from repro.core.sss import sort_select_swap
from repro.core.workload import Application, Workload


def rect_instance(rows=4, cols=8, seed=0):
    rng = np.random.default_rng(seed)
    mesh = Mesh(rows, cols)
    model = MeshLatencyModel(
        mesh,
        mc_tiles=(
            mesh.tile(0, 0),
            mesh.tile(0, cols - 1),
            mesh.tile(rows - 1, 0),
            mesh.tile(rows - 1, cols - 1),
        ),
    )
    n = mesh.n_tiles
    apps = tuple(
        Application(f"a{i}", rng.uniform(0.2, 4, n // 4), rng.uniform(0, 1, n // 4))
        for i in range(4)
    )
    return OBMInstance(model, Workload(apps))


class TestRectangularMesh:
    def test_latency_arrays_shapes(self):
        inst = rect_instance()
        assert inst.tc.shape == (32,)
        assert inst.tm.shape == (32,)
        # Middle tiles still have the lowest cache latency.
        grid = inst.model.tc_grid()
        assert grid[2, 4] < grid[0, 0]

    def test_mem_hops_from_corners(self):
        inst = rect_instance(rows=3, cols=5)
        # Corner tiles have HM = 0; the centre tile the full quadrant walk.
        for mc in inst.model.mc_tiles:
            assert inst.model.mem_hops[mc] == 0

    def test_sss_on_rectangle(self):
        inst = rect_instance()
        result = sort_select_swap(inst)
        assert sorted(result.mapping.perm.tolist()) == list(range(32))
        glob = global_mapping(inst)
        assert result.max_apl <= glob.max_apl + 1e-9

    def test_sss_beats_global_balance_on_rectangle(self):
        inst = rect_instance(seed=3)
        sss = sort_select_swap(inst)
        glob = global_mapping(inst)
        assert sss.dev_apl < glob.dev_apl

    @pytest.mark.parametrize("rows,cols", [(2, 8), (8, 2), (3, 5), (1, 16)])
    def test_various_shapes(self, rows, cols):
        mesh = Mesh(rows, cols)
        model = MeshLatencyModel(mesh, mc_tiles=(0, mesh.n_tiles - 1))
        rng = np.random.default_rng(rows * 100 + cols)
        n = mesh.n_tiles
        apps = (
            Application("a", rng.uniform(0.5, 2, n // 2), rng.uniform(0, 0.5, n // 2)),
            Application("b", rng.uniform(0.5, 2, n - n // 2), rng.uniform(0, 0.5, n - n // 2)),
        )
        inst = OBMInstance(model, Workload(apps))
        result = sort_select_swap(inst)
        assert sorted(result.mapping.perm.tolist()) == list(range(n))


class TestBatchedMetricsConsistency:
    @given(seed=st.integers(0, 5_000), batch=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_scalar_evaluation(self, seed, batch):
        """The vectorised MC/GA fitness path must agree exactly with the
        scalar evaluator on arbitrary permutations."""
        inst = rect_instance(seed=seed % 7)
        rng = np.random.default_rng(seed)
        perms = np.array([rng.permutation(inst.n) for _ in range(batch)])
        max_b, dev_b, g_b = _batched_metrics(inst, perms)
        for i, perm in enumerate(perms):
            ev = evaluate_mapping(inst.workload, perm, inst.tc, inst.tm)
            assert max_b[i] == pytest.approx(ev.max_apl)
            assert dev_b[i] == pytest.approx(ev.dev_apl)
            assert g_b[i] == pytest.approx(ev.g_apl)
