"""Property-based tests of the mapping algorithms on random workloads.

Three families of invariants, checked on hypothesis-driven random OBM
instances (random app partition sizes, rates and memory intensities):

* structure — every algorithm returns a valid thread-to-tile permutation;
* certified bounds — no mapping's per-app APL beats that app's isolated
  SAM optimum, and no max-APL beats the instance lower bound
  (:func:`repro.core.bounds.max_apl_lower_bound` is *certified*, so a
  violation is a bug by definition, never a tolerance issue);
* paper ordering — SSS targets max-APL while Global targets g-APL, so
  SSS should (and empirically does) win max-APL on most instances.  SSS
  is a heuristic, not an exact method: random instances exist where it
  trails Global by ~1%, so the per-instance check carries a 5% headroom
  and strict dominance is asserted in aggregate over a fixed batch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import global_mapping, monte_carlo
from repro.core.bounds import max_apl_lower_bound
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.sss import sort_select_swap
from repro.core.workload import Application, Workload

SETTINGS = settings(derandomize=True, deadline=None, max_examples=15)

ALGORITHMS = {
    "sss": sort_select_swap,
    "global": global_mapping,
    "mc": lambda inst: monte_carlo(inst, n_samples=300, seed=0),
}


def random_instance(seed: int, side: int = 4) -> OBMInstance:
    """A random OBM instance: random app partition, rates, intensities."""
    rng = np.random.default_rng(seed)
    n = side * side
    k = int(rng.integers(2, 5))
    cuts = sorted(rng.choice(np.arange(1, n), size=k - 1, replace=False))
    sizes = np.diff([0, *cuts, n])
    apps = tuple(
        Application(
            f"app{i}",
            rng.uniform(0.1, 5.0, int(s)),
            rng.uniform(0.0, 0.5, int(s)),
        )
        for i, s in enumerate(sizes)
    )
    return OBMInstance(
        MeshLatencyModel(Mesh.square(side)), Workload(apps, name=f"rand{seed}")
    )


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_returns_a_valid_permutation(algorithm, seed):
    instance = random_instance(seed)
    result = ALGORITHMS[algorithm](instance)
    perm = result.mapping.perm
    assert sorted(perm.tolist()) == list(range(instance.n))


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_no_app_beats_its_isolated_optimum(algorithm, seed):
    """Per-app APL >= that app's SAM optimum (a certified floor)."""
    instance = random_instance(seed)
    result = ALGORITHMS[algorithm](instance)
    apls = instance.app_apls(result.mapping)
    lb = max_apl_lower_bound(instance)
    assert np.all(apls >= lb.per_app_optima - 1e-9)


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_max_apl_respects_the_instance_bound(seed):
    instance = random_instance(seed)
    lb = max_apl_lower_bound(instance)
    for algorithm in ALGORITHMS.values():
        result = algorithm(instance)
        assert result.max_apl >= lb.value - 1e-9
        assert lb.gap(result.max_apl) >= -1e-12


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_sss_tracks_global_per_instance(seed):
    """SSS max-APL never trails Global by more than heuristic noise."""
    instance = random_instance(seed)
    sss = sort_select_swap(instance)
    glb = global_mapping(instance)
    assert sss.max_apl <= glb.max_apl * 1.05 + 1e-9


def test_sss_beats_global_in_aggregate():
    """Over a fixed batch, SSS wins max-APL strictly more than it loses
    and wins on average — the paper's Figure 9 ordering."""
    wins, losses = 0, 0
    sss_total, glb_total = 0.0, 0.0
    for seed in range(25):
        instance = random_instance(seed)
        sss = sort_select_swap(instance)
        glb = global_mapping(instance)
        sss_total += sss.max_apl
        glb_total += glb.max_apl
        if sss.max_apl < glb.max_apl - 1e-9:
            wins += 1
        elif sss.max_apl > glb.max_apl + 1e-9:
            losses += 1
    assert wins > losses
    assert sss_total < glb_total
