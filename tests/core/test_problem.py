"""Tests of Mapping, OBMInstance, and the NP-completeness reduction."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import (
    Mapping,
    OBMInstance,
    obm_from_set_partition,
    set_partition_from_mapping,
)
from repro.core.workload import Application, Workload


class TestMapping:
    def test_identity(self):
        m = Mapping.identity(4)
        assert m.n == 4
        assert m.tile_of_thread(2) == 2
        assert m.thread_on_tile(3) == 3

    def test_inverse(self):
        m = Mapping(np.array([2, 0, 1]))
        assert list(m.inverse) == [1, 2, 0]

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            Mapping(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            Mapping(np.array([0, 3]))
        with pytest.raises(ValueError):
            Mapping(np.array([-1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mapping(np.array([], dtype=int))

    def test_swap_threads(self):
        m = Mapping(np.array([0, 1, 2]))
        s = m.with_swapped_threads(0, 2)
        assert list(s.perm) == [2, 1, 0]
        # original untouched
        assert list(m.perm) == [0, 1, 2]

    def test_compose_tiles(self):
        m = Mapping(np.array([0, 1, 2, 3]))
        rotated = m.compose_tiles({0: 1, 1: 2, 2: 0})
        assert list(rotated.perm) == [1, 2, 0, 3]

    def test_compose_tiles_non_permutation_rejected(self):
        m = Mapping(np.array([0, 1]))
        with pytest.raises(ValueError):
            m.compose_tiles({0: 1})

    def test_perm_read_only(self):
        m = Mapping.identity(3)
        with pytest.raises(ValueError):
            m.perm[0] = 1

    def test_app_grid(self):
        mesh = Mesh.square(2)
        wl = Workload(
            (
                Application("a", [1.0, 1.0], [0.0, 0.0]),
                Application("b", [1.0, 1.0], [0.0, 0.0]),
            )
        )
        m = Mapping(np.array([0, 3, 1, 2]))
        grid = m.app_grid(wl, mesh)
        assert grid.tolist() == [[1, 2], [2, 1]]

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 30))
    @settings(max_examples=50, deadline=None)
    def test_inverse_roundtrip(self, seed, n):
        rng = np.random.default_rng(seed)
        m = Mapping(rng.permutation(n))
        assert np.array_equal(m.perm[m.inverse], np.arange(n))
        assert np.array_equal(m.inverse[m.perm], np.arange(n))


class TestOBMInstance:
    def test_padding_applied(self):
        model = MeshLatencyModel(Mesh.square(2))
        wl = Workload((Application("a", [1.0, 1.0], [0.1, 0.1]),))
        inst = OBMInstance(model, wl)
        assert inst.workload.n_threads == 4
        assert inst.workload.applications[-1].is_idle

    def test_oversized_workload_rejected(self):
        model = MeshLatencyModel(Mesh.square(2))
        wl = Workload((Application("a", [1.0] * 5, [0.0] * 5),))
        with pytest.raises(ValueError):
            OBMInstance(model, wl)

    def test_cost_matrix_is_equation_13(self, small_instance):
        inst = small_instance
        wl = inst.workload
        j, k = 3, 7
        expected = wl.cache_rates[j] * inst.tc[k] + wl.mem_rates[j] * inst.tm[k]
        assert inst.cost_matrix[j, k] == pytest.approx(expected)
        assert inst.cost_matrix.shape == (inst.n, inst.n)

    def test_evaluate_matches_cost_matrix_total(self, small_instance):
        inst = small_instance
        m = Mapping(np.arange(inst.n))
        total_by_cost = inst.cost_matrix[np.arange(inst.n), m.perm].sum()
        ev = inst.evaluate(m)
        total_volume = inst.workload.app_volumes.sum()
        assert ev.g_apl == pytest.approx(total_by_cost / total_volume)

    def test_decide_predicate(self, small_instance):
        inst = small_instance
        m = Mapping(np.arange(inst.n))
        ev = inst.evaluate(m)
        assert inst.decide(m, ev.max_apl)  # threshold at the max: feasible
        assert not inst.decide(m, ev.max_apl - 0.01)

    def test_wrong_size_mapping_rejected(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.evaluate(Mapping(np.arange(4)))


class TestSetPartitionReduction:
    """Executable version of the paper's Section III.C proof."""

    def brute_force_feasible(self, inst, gamma):
        n = inst.n
        for perm in itertools.permutations(range(n)):
            if inst.decide(Mapping(np.array(perm)), gamma):
                return Mapping(np.array(perm))
        return None

    def test_solvable_instance(self):
        # {1,2,3,4,5,5}: halves {5,3,2} and {5,4,1} both sum to 10.
        inst, gamma = obm_from_set_partition([1, 2, 3, 4, 5, 5])
        assert gamma == pytest.approx(20 / 6)
        mapping = self.brute_force_feasible(inst, gamma)
        assert mapping is not None
        a1, a2 = set_partition_from_mapping(mapping)
        s = np.array([1, 2, 3, 4, 5, 5], dtype=float)
        assert s[a1].sum() == pytest.approx(s[a2].sum())
        assert len(a1) == len(a2) == 3

    def test_unsolvable_instance(self):
        # {1,1,1,5}: equal-size halves can at best split 4 vs 4? No:
        # pairs are (1,1)|(1,5)=2|6, (1,5)|(1,1)... no equal split exists.
        inst, gamma = obm_from_set_partition([1, 1, 1, 5])
        assert self.brute_force_feasible(inst, gamma) is None

    def test_reduction_structure(self):
        inst, gamma = obm_from_set_partition([2, 4, 6, 8])
        assert np.array_equal(inst.tc, [2, 4, 6, 8])
        assert np.all(inst.tm == 0)
        assert inst.workload.n_apps == 2
        assert np.all(inst.workload.cache_rates == 1.0)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            obm_from_set_partition([1, 2, 3])

    @given(
        half=st.lists(st.integers(1, 20), min_size=2, max_size=3),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_constructed_solvable_instances_verify(self, half, seed):
        """Any multiset built as two equal-sum halves must be feasible."""
        rng = np.random.default_rng(seed)
        s = list(half) + list(half)  # trivially partitionable
        rng.shuffle(s)
        inst, gamma = obm_from_set_partition(s)
        assert self.brute_force_feasible(inst, gamma) is not None
