"""Property tests pinning the solver kernels to their reference paths.

Three bit-identity contracts, fuzzed with hypothesis:

* :func:`repro.core.permkernels.sweep_pass_inplace` (every backend) is
  the fused form of the per-window ``_SwapState.try_window`` sweep —
  same accept decisions, same float accumulation, same counters — on
  random workloads including zero-traffic padding apps and across the
  multi-pass ``recompute()`` float-drift cadence.
* :class:`repro.core.permkernels.PermutationBatchEvaluator` reproduces
  per-permutation :func:`repro.core.metrics.evaluate_mapping` bitwise.
* Every Hungarian backend returns the assignment of the pure-Python
  reference, including on heavily tied (degenerate) cost matrices.

Plus the deterministic tie-break contracts of Monte Carlo and
exhaustive search that ride on the batch evaluator.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import hungarian, permkernels
from repro.core.baselines import _permutation_batch, monte_carlo
from repro.core.exact import branch_and_bound, exhaustive_search
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.metrics import evaluate_many, evaluate_mapping
from repro.core.problem import OBMInstance
from repro.core.sss import _SwapState, _window_perms
from repro.core.workload import Application, Workload
from repro.utils.rng import as_rng

# Backends that can run in any environment.  numba/cc join when available;
# their absence must not silently shrink coverage of the always-on pair.
BACKENDS = ["numpy", "interp"]
if permkernels.backend_info()["cc"]:
    BACKENDS.append("cc")
if permkernels.backend_info()["numba"]:
    BACKENDS.append("numba")


def fuzz_instance(seed: int, side: int, n_apps: int, idle_apps: int) -> OBMInstance:
    """Random instance; the last ``idle_apps`` applications have zero traffic."""
    rng = np.random.default_rng(seed)
    model = MeshLatencyModel(Mesh.square(side))
    n = model.n_tiles
    total_apps = min(n_apps + idle_apps, n)  # every app needs >= 1 thread
    n_apps = min(n_apps, total_apps)
    # Random composition of n threads over the apps, >= 1 thread each.
    cuts = np.sort(rng.choice(n - 1, size=total_apps - 1, replace=False)) + 1
    counts = np.diff(np.concatenate(([0], cuts, [n])))
    apps = []
    for i, k in enumerate(counts):
        idle = i >= n_apps
        apps.append(
            Application(
                f"a{i}",
                np.zeros(k) if idle else rng.uniform(0.1, 5, k),
                np.zeros(k) if idle else rng.uniform(0.0, 1, k),
            )
        )
    return OBMInstance(model, Workload(tuple(apps)))


def _reference_sweep(state: _SwapState, sorted_tiles: np.ndarray, w: int, max_step: int) -> None:
    """The pre-kernel per-window sweep, verbatim (one pass)."""
    n = sorted_tiles.size
    for step in range(1, max_step + 1):
        span = (w - 1) * step
        for start in range(n - span):
            state.try_window(sorted_tiles[start + step * np.arange(w)])


class TestSweepKernel:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        side=st.integers(3, 4),
        n_apps=st.integers(1, 3),
        idle_apps=st.integers(0, 2),
        window=st.integers(2, 4),
        passes=st.integers(1, 2),
    )
    def test_matches_per_window_reference(
        self, seed, side, n_apps, idle_apps, window, passes
    ):
        instance = fuzz_instance(seed, side, n_apps, idle_apps)
        rng = np.random.default_rng(seed + 1)
        perm0 = rng.permutation(instance.n).astype(np.int64)
        sorted_tiles = np.argsort(instance.tc, kind="stable").astype(np.int64)
        max_step = max(1, instance.n // window)

        ref = _SwapState(instance, perm0, window)
        for _ in range(passes):
            _reference_sweep(ref, sorted_tiles, window, max_step)
            ref.recompute()

        for backend in BACKENDS:
            state = _SwapState(instance, perm0, window)
            for _ in range(passes):
                tried, accepted = permkernels.sweep_pass_inplace(
                    sorted_tiles, window, max_step, state.perms, state.perm,
                    state.tile_thread, state.numerators, state.c, state.m,
                    state.tc, state.tm, state.app_of_thread,
                    state._safe_volumes, state.active, backend=backend,
                )
                state.windows_tried += tried
                state.windows_accepted += accepted
                state.recompute()
            assert state.perm.tolist() == ref.perm.tolist(), backend
            assert state.tile_thread.tolist() == ref.tile_thread.tolist(), backend
            assert state.numerators.tobytes() == ref.numerators.tobytes(), backend
            assert state.windows_tried == ref.windows_tried, backend
            assert state.windows_accepted == ref.windows_accepted, backend

    def test_window_perms_identity_first(self):
        for w in (2, 3, 4):
            perms = _window_perms(w)
            assert perms[0].tolist() == list(range(w))
            assert perms.shape == (math.factorial(w), w)


class TestBatchEvaluator:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        side=st.integers(2, 4),
        n_apps=st.integers(1, 3),
        idle_apps=st.integers(0, 2),
        k=st.integers(1, 16),
    )
    def test_evaluations_match_evaluate_mapping(self, seed, side, n_apps, idle_apps, k):
        instance = fuzz_instance(seed, side, n_apps, idle_apps)
        rng = np.random.default_rng(seed + 2)
        perms = np.stack([rng.permutation(instance.n) for _ in range(k)]).astype(np.int64)
        wl = instance.workload
        batch = evaluate_many(wl, perms, instance.tc, instance.tm)
        assert len(batch) == k
        for row, got in zip(perms, batch):
            want = evaluate_mapping(wl, row, instance.tc, instance.tm)
            assert got.apls.tobytes() == want.apls.tobytes()
            assert float(got.max_apl).hex() == float(want.max_apl).hex()
            assert float(got.dev_apl).hex() == float(want.dev_apl).hex()
            assert float(got.g_apl).hex() == float(want.g_apl).hex()
            assert float(got.min_max_ratio).hex() == float(want.min_max_ratio).hex()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        side=st.integers(2, 4),
        n_apps=st.integers(1, 4),
        k=st.integers(1, 16),
    )
    def test_metrics_match_scalar_functions(self, seed, side, n_apps, k):
        from repro.core.metrics import dev_apl, g_apl, max_apl

        instance = fuzz_instance(seed, side, n_apps, 0)
        rng = np.random.default_rng(seed + 3)
        perms = np.stack([rng.permutation(instance.n) for _ in range(k)]).astype(np.int64)
        wl = instance.workload
        max_col, dev_col, g_col = instance.batch_evaluator.metrics(perms)
        for i, row in enumerate(perms):
            assert float(max_col[i]).hex() == float(max_apl(wl, row, instance.tc, instance.tm)).hex()
            assert float(dev_col[i]).hex() == float(dev_apl(wl, row, instance.tc, instance.tm)).hex()
            assert float(g_col[i]).hex() == float(g_apl(wl, row, instance.tc, instance.tm)).hex()

    def test_one_dimensional_promotion_and_shape_check(self):
        instance = fuzz_instance(0, 2, 2, 0)
        ev = instance.batch_evaluator
        single = ev.max_apls(np.arange(instance.n, dtype=np.int64))
        assert single.shape == (1,)
        with pytest.raises(ValueError):
            ev.max_apls(np.zeros((2, instance.n + 1), dtype=np.int64))

    def test_objective_values_chunking_is_invisible(self):
        instance = fuzz_instance(5, 3, 2, 1)
        rng = np.random.default_rng(9)
        perms = np.stack([rng.permutation(instance.n) for _ in range(7)]).astype(np.int64)
        ev = instance.batch_evaluator
        whole = ev.objective_values(perms, lambda e: e.dev_apl, chunk=512)
        tiny = ev.objective_values(perms, lambda e: e.dev_apl, chunk=2)
        assert whole.tobytes() == tiny.tobytes()


class TestHungarianBackends:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 8),
        extra_cols=st.integers(0, 3),
        levels=st.integers(1, 4),
    )
    def test_all_backends_match_reference(self, seed, n, extra_cols, levels):
        # Few distinct integer values => many exact ties: the tie-break
        # (ascending-column first minimum) must agree across backends.
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, levels, size=(n, n + extra_cols)).astype(float)
        want = hungarian._solve_reference(cost, n, n + extra_cols)
        for backend in BACKENDS:
            with permkernels.force_backend(backend):
                got = hungarian.solve_assignment(cost)
            assert got.col_of_row.tolist() == want.col_of_row.tolist(), backend
            assert float(got.total_cost).hex() == float(want.total_cost).hex(), backend


class TestMonteCarloTieBreak:
    def test_constant_objective_returns_first_sample(self):
        """All samples tie => the first sampled permutation wins (satellite 1)."""
        instance = fuzz_instance(3, 3, 2, 0)
        result = monte_carlo(
            instance, n_samples=64, seed=11, objective=lambda ev: 0.0, batch=16
        )
        first = _permutation_batch(as_rng(11), 16, instance.n)[0]
        assert result.mapping.perm.tolist() == first.tolist()
        assert result.extra["objective_value"] == 0.0

    @pytest.mark.parametrize("name", ["max_apl", "dev_apl", "g_apl"])
    def test_callable_equals_named_objective(self, name):
        """The chunked-callable path is bit-identical to the named fast path."""
        from repro.core.baselines import OBJECTIVES

        instance = fuzz_instance(7, 3, 3, 1)
        named = monte_carlo(instance, n_samples=300, seed=5, objective=name)
        fn = OBJECTIVES[name]
        via_callable = monte_carlo(
            instance, n_samples=300, seed=5, objective=lambda ev: fn(ev)
        )
        assert via_callable.mapping.perm.tolist() == named.mapping.perm.tolist()
        assert (
            float(via_callable.extra["objective_value"]).hex()
            == float(named.extra["objective_value"]).hex()
        )


class TestExhaustiveSearch:
    def test_matches_branch_and_bound_optimum(self):
        for seed in (0, 1, 2):
            instance = fuzz_instance(seed, 2, 2, 0)
            exact = branch_and_bound(instance)
            brute = exhaustive_search(instance)
            assert (
                float(brute.evaluation.max_apl).hex()
                == float(exact.evaluation.max_apl).hex()
            )
            assert brute.extra["proved_optimal"]
            assert brute.extra["permutations"] == 24

    def test_chunking_does_not_change_the_winner(self):
        instance = fuzz_instance(4, 2, 2, 0)
        whole = exhaustive_search(instance)
        tiny = exhaustive_search(instance, chunk=5)
        assert tiny.mapping.perm.tolist() == whole.mapping.perm.tolist()

    def test_rejects_large_instances_and_bad_chunk(self):
        big = fuzz_instance(0, 4, 2, 0)  # 16 threads > 10
        with pytest.raises(ValueError):
            exhaustive_search(big)
        small = fuzz_instance(0, 2, 2, 0)
        with pytest.raises(ValueError):
            exhaustive_search(small, chunk=0)


class TestBackendPlumbing:
    def test_force_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            with permkernels.force_backend("fortran"):
                pass

    def test_resolve_backend_honours_force(self):
        with permkernels.force_backend("numpy"):
            assert permkernels.resolve_backend() == "numpy"
        with permkernels.force_backend("reference"):
            assert permkernels.resolve_backend() == "reference"

    def test_env_off_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "off")
        assert permkernels.resolve_backend() == "numpy"
        monkeypatch.setenv("REPRO_JIT", "interp")
        assert permkernels.resolve_backend() == "interp"

    def test_backend_info_shape(self):
        info = permkernels.backend_info()
        assert set(info) == {
            "backend", "numba", "cc", "cc_compiler", "cc_reason", "numba_reason"
        }
        assert info["backend"] in ("numba", "cc", "interp", "numpy")

    def test_warmup_idempotent(self):
        first = permkernels.warmup()
        assert first == permkernels.warmup()
