"""Tests of the from-scratch Hungarian solver, cross-checked against SciPy."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core.hungarian import solve_assignment


def brute_force_min(cost: np.ndarray) -> float:
    n, m = cost.shape
    best = np.inf
    for perm in itertools.permutations(range(m), n):
        best = min(best, sum(cost[i, j] for i, j in enumerate(perm)))
    return best


class TestBasics:
    def test_identity_optimal(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        res = solve_assignment(cost)
        assert list(res.col_of_row) == [0, 1]
        assert res.total_cost == 0.0

    def test_single_cell(self):
        res = solve_assignment(np.array([[7.0]]))
        assert res.total_cost == 7.0
        assert res.n_rows == 1

    def test_known_3x3(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
        res = solve_assignment(cost)
        assert res.total_cost == pytest.approx(5.0)  # 1 + 2 + 2

    def test_assignment_is_injective(self):
        rng = np.random.default_rng(0)
        cost = rng.random((10, 10))
        res = solve_assignment(cost)
        assert len(set(res.col_of_row.tolist())) == 10

    def test_as_pairs(self):
        res = solve_assignment(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert res.as_pairs() == [(0, 1), (1, 0)]

    def test_negative_costs_supported(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        res = solve_assignment(cost)
        assert res.total_cost == pytest.approx(-10.0)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros((0, 3)))

    def test_more_rows_than_cols_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros((3, 2)))

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.array([[1.0, np.inf]]))
        with pytest.raises(ValueError):
            solve_assignment(np.array([[1.0, np.nan]]))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            solve_assignment(np.array([1.0, 2.0]))


class TestAgainstScipy:
    @given(
        n=st.integers(1, 12),
        m_extra=st.integers(0, 4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_scipy_optimum(self, n, m_extra, seed):
        rng = np.random.default_rng(seed)
        cost = rng.random((n, n + m_extra)) * 100
        ours = solve_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert ours.total_cost == pytest.approx(cost[rows, cols].sum())

    @given(n=st.integers(2, 8), seed=st.integers(0, 1_000))
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_with_heavy_ties(self, n, seed):
        """Degenerate costs (few distinct values) stress dual updates."""
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 3, size=(n, n)).astype(float)
        ours = solve_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert ours.total_cost == pytest.approx(cost[rows, cols].sum())

    def test_matches_brute_force_small(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            cost = rng.random((4, 6))
            assert solve_assignment(cost).total_cost == pytest.approx(
                brute_force_min(cost)
            )

    def test_large_instance(self):
        rng = np.random.default_rng(3)
        cost = rng.random((64, 64))
        ours = solve_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert ours.total_cost == pytest.approx(cost[rows, cols].sum())

    def test_result_read_only(self):
        res = solve_assignment(np.eye(3))
        with pytest.raises(ValueError):
            res.col_of_row[0] = 2
