"""Property-based tests of the Hungarian solver against brute force.

For matrices small enough to enumerate (<= 6x6 there are at most 720
permutations; rectangular n < m cases enumerate m!/(m-n)! injections),
exhaustive search is the undisputable ground truth.  Hypothesis drives
the matrix shapes and entries — including adversarial regimes the
random-uniform tests never hit: massive ties, integer costs, huge
magnitude spreads, negative entries.

``derandomize=True`` keeps CI deterministic (no example database, no
flaky shrink sessions); the generator still covers the space because the
strategy, not the seed, defines it.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hungarian import solve_assignment

SETTINGS = settings(derandomize=True, deadline=None, max_examples=60)


def brute_force_optimum(cost: np.ndarray) -> float:
    """Exhaustive minimum over all injective row -> column maps."""
    n, m = cost.shape
    rows = np.arange(n)
    return min(
        float(cost[rows, list(cols)].sum())
        for cols in itertools.permutations(range(m), n)
    )


def _matrix(n: int, m: int, entries: st.SearchStrategy) -> st.SearchStrategy:
    return st.lists(
        st.lists(entries, min_size=m, max_size=m), min_size=n, max_size=n
    ).map(lambda rows: np.array(rows, dtype=float))


_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
# A tiny integer alphabet forces heavy cost ties — the regime where
# shortest-augmenting-path bookkeeping bugs (wrong tie-breaks, stale
# potentials) actually surface.
_tied_ints = st.integers(min_value=0, max_value=3).map(float)

_square_shapes = st.integers(min_value=1, max_value=6).map(lambda n: (n, n))
_rect_shapes = st.tuples(
    st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=6)
).filter(lambda nm: nm[0] < nm[1])


def _check_against_brute_force(cost: np.ndarray) -> None:
    result = solve_assignment(cost)
    n, m = cost.shape
    cols = result.col_of_row
    # Structural validity: an injective row -> column map.
    assert cols.size == n
    assert len(set(cols.tolist())) == n
    assert all(0 <= int(j) < m for j in cols)
    # The reported cost is the cost of the reported assignment...
    assert np.isclose(result.total_cost, float(cost[np.arange(n), cols].sum()))
    # ...and no assignment does better.
    assert np.isclose(result.total_cost, brute_force_optimum(cost), atol=1e-9)


@SETTINGS
@given(data=st.data(), shape=_square_shapes)
def test_square_matrices_hit_the_optimum(data, shape):
    n, m = shape
    _check_against_brute_force(data.draw(_matrix(n, m, _floats)))


@SETTINGS
@given(data=st.data(), shape=_rect_shapes)
def test_rectangular_matrices_hit_the_optimum(data, shape):
    n, m = shape
    _check_against_brute_force(data.draw(_matrix(n, m, _floats)))


@SETTINGS
@given(data=st.data(), shape=st.one_of(_square_shapes, _rect_shapes))
def test_tied_integer_costs_hit_the_optimum(data, shape):
    n, m = shape
    _check_against_brute_force(data.draw(_matrix(n, m, _tied_ints)))


@SETTINGS
@given(data=st.data(), n=st.integers(min_value=2, max_value=5))
def test_permuting_rows_permutes_the_assignment(data, n):
    """Row order must not affect optimality (only labels move)."""
    cost = data.draw(_matrix(n, n, _floats))
    perm = data.draw(st.permutations(range(n)))
    base = solve_assignment(cost)
    shuffled = solve_assignment(cost[list(perm), :])
    assert np.isclose(base.total_cost, shuffled.total_cost, atol=1e-9)


@SETTINGS
@given(
    data=st.data(),
    n=st.integers(min_value=1, max_value=5),
    offset=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)
def test_constant_shift_shifts_cost_only(data, n, offset):
    """Adding c to every entry adds n*c to the optimum, nothing else."""
    cost = data.draw(_matrix(n, n, _floats))
    base = solve_assignment(cost)
    shifted = solve_assignment(cost + offset)
    assert np.isclose(shifted.total_cost, base.total_cost + n * offset, atol=1e-6)
