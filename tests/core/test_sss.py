"""Tests of the sort-select-swap algorithm (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import global_mapping, random_mapping
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.sss import (
    SSSConfig,
    _SwapState,
    multi_start_sss,
    select_only_mapping,
    sort_select_swap,
)
from repro.core.workload import Application, Workload


def random_instance(seed: int, n: int = 4, n_apps: int = 2) -> OBMInstance:
    rng = np.random.default_rng(seed)
    model = MeshLatencyModel(Mesh.square(n))
    per_app = model.n_tiles // n_apps
    apps = tuple(
        Application(
            f"a{i}", rng.uniform(0.1, 5, per_app), rng.uniform(0.0, 1, per_app)
        )
        for i in range(n_apps)
    )
    return OBMInstance(model, Workload(apps))


class TestSSSConfig:
    def test_defaults_are_paper(self):
        cfg = SSSConfig()
        assert cfg.window == 4
        assert cfg.final_polish
        assert cfg.select == "middle"
        assert cfg.swap_passes == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SSSConfig(window=1)
        with pytest.raises(ValueError):
            SSSConfig(window=7)

    def test_invalid_select(self):
        with pytest.raises(ValueError):
            SSSConfig(select="best")

    def test_invalid_app_order(self):
        with pytest.raises(ValueError):
            SSSConfig(app_order="random")

    def test_negative_passes(self):
        with pytest.raises(ValueError):
            SSSConfig(swap_passes=-1)


class TestCorrectness:
    def test_produces_valid_permutation(self, c1_instance):
        result = sort_select_swap(c1_instance)
        perm = result.mapping.perm
        assert sorted(perm.tolist()) == list(range(c1_instance.n))

    def test_deterministic(self, c1_instance):
        r1 = sort_select_swap(c1_instance)
        r2 = sort_select_swap(c1_instance)
        assert np.array_equal(r1.mapping.perm, r2.mapping.perm)

    def test_figure5_reaches_exact_optimum(self, figure5_instance):
        """On the paper's 4x4 example SSS must find the 10.3375 optimum."""
        result = sort_select_swap(figure5_instance)
        assert result.max_apl == pytest.approx(10.3375)
        assert result.dev_apl == pytest.approx(0.0, abs=1e-9)

    def test_swap_never_worsens_select(self, c1_instance):
        result = sort_select_swap(c1_instance)
        select_eval = result.extra["select_eval"]
        swap_eval = result.extra["swap_eval"]
        assert swap_eval.max_apl <= select_eval.max_apl + 1e-9

    def test_beats_global_on_max_apl(self, c1_instance):
        sss = sort_select_swap(c1_instance)
        glob = global_mapping(c1_instance)
        assert sss.max_apl < glob.max_apl

    def test_beats_random_on_balance(self, c1_instance):
        sss = sort_select_swap(c1_instance)
        rnd = random_mapping(c1_instance, seed=0)
        assert sss.dev_apl < rnd.dev_apl
        assert sss.max_apl < rnd.max_apl

    def test_small_g_apl_overhead_vs_global(self, c1_instance):
        sss = sort_select_swap(c1_instance)
        glob = global_mapping(c1_instance)
        assert sss.g_apl <= glob.g_apl * 1.10  # paper: < 3.82% average

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=20, deadline=None)
    def test_valid_on_random_instances(self, seed):
        inst = random_instance(seed)
        result = sort_select_swap(inst)
        assert sorted(result.mapping.perm.tolist()) == list(range(inst.n))
        assert result.max_apl >= result.g_apl - 1e-9  # max >= volume-weighted mean

    def test_uneven_app_sizes(self):
        model = MeshLatencyModel(Mesh.square(4))
        rng = np.random.default_rng(0)
        apps = (
            Application("a", rng.uniform(1, 2, 3), rng.uniform(0, 1, 3)),
            Application("b", rng.uniform(1, 2, 13), rng.uniform(0, 1, 13)),
        )
        inst = OBMInstance(model, Workload(apps))
        result = sort_select_swap(inst)
        assert sorted(result.mapping.perm.tolist()) == list(range(16))

    def test_with_idle_padding(self):
        model = MeshLatencyModel(Mesh.square(4))
        apps = (Application("a", np.ones(10), np.ones(10) * 0.1),)
        inst = OBMInstance(model, Workload(apps))
        result = sort_select_swap(inst)
        assert sorted(result.mapping.perm.tolist()) == list(range(16))

    def test_single_app_equals_sam_quality(self):
        """One application owning the whole chip: SSS == plain SAM optimum."""
        from repro.core.sam import solve_sam

        model = MeshLatencyModel(Mesh.square(4))
        rng = np.random.default_rng(5)
        app = Application("only", rng.uniform(0.1, 3, 16), rng.uniform(0, 1, 16))
        inst = OBMInstance(model, Workload((app,)))
        result = sort_select_swap(inst)
        sam = solve_sam(
            app.cache_rates, app.mem_rates, np.arange(16), inst.tc, inst.tm
        )
        assert result.max_apl == pytest.approx(sam.apl)


class TestConfigVariants:
    @pytest.mark.parametrize("select", ["middle", "first", "last", "random"])
    def test_select_policies_valid(self, select, small_instance):
        cfg = SSSConfig(select=select)
        result = sort_select_swap(small_instance, cfg, seed=1)
        assert sorted(result.mapping.perm.tolist()) == list(range(16))

    @pytest.mark.parametrize("app_order", ["given", "heavy_first", "light_first"])
    def test_app_orders_valid(self, app_order, small_instance):
        cfg = SSSConfig(app_order=app_order)
        result = sort_select_swap(small_instance, cfg)
        assert sorted(result.mapping.perm.tolist()) == list(range(16))

    def test_no_swap_equals_select_only(self, small_instance):
        cfg = SSSConfig(swap_passes=0, final_polish=False)
        full = sort_select_swap(small_instance, cfg)
        sel = select_only_mapping(small_instance)
        assert np.array_equal(full.mapping.perm, sel.mapping.perm)

    def test_window3(self, small_instance):
        result = sort_select_swap(small_instance, SSSConfig(window=3))
        assert sorted(result.mapping.perm.tolist()) == list(range(16))

    def test_rebalance_extension_improves_dev(self, c1_instance):
        base = sort_select_swap(c1_instance)
        rebal = sort_select_swap(c1_instance, SSSConfig(rebalance_after_polish=True))
        assert rebal.max_apl <= base.max_apl + 1e-9
        assert sorted(rebal.mapping.perm.tolist()) == list(range(c1_instance.n))

    def test_more_passes_never_worse(self, c1_instance):
        one = sort_select_swap(c1_instance, SSSConfig(swap_passes=1, final_polish=False))
        two = sort_select_swap(c1_instance, SSSConfig(swap_passes=2, final_polish=False))
        assert two.max_apl <= one.max_apl + 1e-9


class TestMultiStart:
    def test_never_worse_than_deterministic(self, c1_instance):
        det = sort_select_swap(c1_instance)
        multi = multi_start_sss(c1_instance, n_starts=4, seed=0)
        assert multi.max_apl <= det.max_apl + 1e-12

    def test_single_start_equals_deterministic(self, small_instance):
        det = sort_select_swap(small_instance)
        multi = multi_start_sss(small_instance, n_starts=1, seed=0)
        assert np.array_equal(multi.mapping.perm, det.mapping.perm)

    def test_seeded_deterministic(self, small_instance):
        a = multi_start_sss(small_instance, n_starts=3, seed=9)
        b = multi_start_sss(small_instance, n_starts=3, seed=9)
        assert np.array_equal(a.mapping.perm, b.mapping.perm)

    def test_invalid_starts(self, small_instance):
        with pytest.raises(ValueError):
            multi_start_sss(small_instance, n_starts=0)


class TestSwapState:
    def test_incremental_matches_recompute(self, small_instance):
        inst = small_instance
        rng = np.random.default_rng(3)
        perm = rng.permutation(inst.n)
        state = _SwapState(inst, perm, window=4)
        sorted_tiles = np.argsort(inst.tc, kind="stable")
        for start in range(inst.n - 3):
            state.try_window(sorted_tiles[start : start + 4])
        incremental = state.numerators.copy()
        state.recompute()
        assert np.allclose(incremental, state.numerators)

    def test_max_apl_matches_evaluation(self, small_instance):
        inst = small_instance
        perm = np.random.default_rng(0).permutation(inst.n)
        state = _SwapState(inst, perm, window=4)
        from repro.core.metrics import evaluate_mapping

        ev = evaluate_mapping(inst.workload, perm, inst.tc, inst.tm)
        assert state.current_max_apl() == pytest.approx(ev.max_apl)

    def test_window_greediness_never_increases_max(self, small_instance):
        inst = small_instance
        perm = np.random.default_rng(1).permutation(inst.n)
        state = _SwapState(inst, perm, window=4)
        sorted_tiles = np.argsort(inst.tc, kind="stable")
        before = state.current_max_apl()
        for start in range(inst.n - 3):
            state.try_window(sorted_tiles[start : start + 4])
            after = state.current_max_apl()
            assert after <= before + 1e-9
            before = after
