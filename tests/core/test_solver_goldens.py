"""Bit-identity goldens for the mapping solvers across kernel backends.

``goldens/solver_results.json`` was captured from the pre-kernel
implementation (before the PR introducing `repro.core.permkernels`):
every solver result — permutation and all four paper metrics, floats
stored as ``float.hex()`` — on the Table 3 workloads C1..C8.  These
tests replay the exact same budgets through each locally available
kernel backend and require *bit* equality, pinning the refactor's core
contract: the compiled/batched kernels change solver speed, never
solver output.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import permkernels
from repro.core.baselines import monte_carlo
from repro.core.exact import ExactSolverLimits, branch_and_bound
from repro.core.genetic import GAConfig, genetic_algorithm
from repro.core.sss import multi_start_sss, sort_select_swap
from repro.experiments.base import standard_instance, standard_model

GOLDEN_PATH = Path(__file__).parent / "goldens" / "solver_results.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
CONFIGS = [f"C{i}" for i in range(1, 9)]


def _backends() -> list:
    """Every backend runnable in this environment (cc/numba may be absent)."""
    out = [
        "numpy",
        "interp",
        pytest.param(
            "cc",
            marks=pytest.mark.skipif(
                not permkernels.backend_info()["cc"], reason="no C compiler"
            ),
        ),
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(
                not permkernels.backend_info()["numba"], reason="numba not installed"
            ),
        ),
    ]
    return out


def _assert_matches(result, doc) -> None:
    ev = result.evaluation
    assert result.mapping.perm.tolist() == doc["perm"]
    assert float(ev.max_apl).hex() == doc["max_apl"]
    assert float(ev.dev_apl).hex() == doc["dev_apl"]
    assert float(ev.g_apl).hex() == doc["g_apl"]
    assert float(ev.min_max_ratio).hex() == doc["min_max_ratio"]


@pytest.fixture(params=_backends())
def backend(request):
    with permkernels.force_backend(request.param):
        yield request.param


@pytest.mark.parametrize("name", CONFIGS)
def test_sss_matches_golden(name, backend):
    _assert_matches(sort_select_swap(standard_instance(name)), GOLDEN[name]["sss"])


@pytest.mark.parametrize("name", CONFIGS)
def test_monte_carlo_matches_golden(name, backend):
    result = monte_carlo(standard_instance(name), n_samples=2_000, seed=0)
    doc = GOLDEN[name]["mc"]
    _assert_matches(result, doc)
    assert float(result.extra["objective_value"]).hex() == doc["objective_value"]


@pytest.mark.parametrize("name", ["C1", "C4", "C8"])
def test_monte_carlo_dev_objective_matches_golden(name, backend):
    result = monte_carlo(
        standard_instance(name), n_samples=1_000, seed=7, objective="dev_apl"
    )
    _assert_matches(result, GOLDEN[name]["mc_dev"])


@pytest.mark.parametrize("name", CONFIGS)
def test_genetic_algorithm_matches_golden(name, backend):
    result = genetic_algorithm(
        standard_instance(name), GAConfig(population=24, generations=12), seed=0
    )
    _assert_matches(result, GOLDEN[name]["ga"])


@pytest.mark.parametrize("name", ["C1", "C4", "C8"])
def test_multi_start_matches_golden(name, backend):
    result = multi_start_sss(standard_instance(name), n_starts=4, seed=0)
    _assert_matches(result, GOLDEN[name]["multi_start"])


@pytest.mark.parametrize("name", ["C1", "C4", "C8"])
def test_branch_and_bound_matches_golden(name, backend):
    instance = standard_instance(name, model=standard_model(4))
    result = branch_and_bound(instance, limits=ExactSolverLimits(max_nodes=50_000))
    doc = GOLDEN["exact_4x4"][name]
    _assert_matches(result, doc)
    assert bool(result.extra["proved_optimal"]) == doc["proved_optimal"]
    assert int(result.extra["nodes"]) == doc["nodes"]


def test_reference_backend_matches_golden():
    """The untouched per-window path still reproduces its own goldens."""
    with permkernels.force_backend("reference"):
        _assert_matches(sort_select_swap(standard_instance("C3")), GOLDEN["C3"]["sss"])
        _assert_matches(
            multi_start_sss(standard_instance("C1"), n_starts=4, seed=0),
            GOLDEN["C1"]["multi_start"],
        )
