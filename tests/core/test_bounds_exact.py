"""Tests of the OBM lower bounds and the exact branch-and-bound solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import global_mapping
from repro.core.bounds import max_apl_lower_bound
from repro.core.exact import ExactSolverLimits, branch_and_bound
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import Mapping, OBMInstance
from repro.core.sss import sort_select_swap
from repro.core.workload import Application, Workload


def random_instance(seed: int, rows: int = 3, cols: int = 3, n_apps: int = 2):
    rng = np.random.default_rng(seed)
    model = MeshLatencyModel(Mesh(rows, cols))
    n = model.n_tiles
    sizes = [n // n_apps] * n_apps
    sizes[-1] += n - sum(sizes)
    apps = tuple(
        Application(f"a{i}", rng.uniform(0.2, 4, s), rng.uniform(0, 1, s))
        for i, s in enumerate(sizes)
    )
    return OBMInstance(model, Workload(apps))


def brute_force_opt(instance) -> float:
    best = np.inf
    for perm in itertools.permutations(range(instance.n)):
        ev = instance.evaluate(Mapping(np.array(perm)))
        best = min(best, ev.max_apl)
    return best


class TestLowerBound:
    def test_bounds_below_brute_force_optimum(self):
        for seed in range(6):
            inst = random_instance(seed, rows=2, cols=4)
            lb = max_apl_lower_bound(inst)
            opt = brute_force_opt(inst)
            assert lb.value <= opt + 1e-9
            assert lb.mean_bound <= opt + 1e-9
            assert lb.per_app_bound <= opt + 1e-9

    def test_mean_bound_is_global_g_apl(self, small_instance):
        lb = max_apl_lower_bound(small_instance)
        glob = global_mapping(small_instance)
        assert lb.mean_bound == pytest.approx(glob.g_apl)

    def test_gap_computation(self, small_instance):
        lb = max_apl_lower_bound(small_instance)
        assert lb.gap(lb.value) == pytest.approx(0.0)
        assert lb.gap(lb.value * 1.1) == pytest.approx(0.1)

    def test_sss_certified_near_optimal_on_c1(self, c1_instance):
        """The reproduction's quality certificate: SSS within 5% of the
        lower bound on the paper's C1 configuration."""
        lb = max_apl_lower_bound(c1_instance)
        sss = sort_select_swap(c1_instance)
        assert lb.gap(sss.max_apl) < 0.05

    def test_per_app_optima_nonnegative(self, small_instance):
        lb = max_apl_lower_bound(small_instance)
        assert np.all(lb.per_app_optima >= 0)


class TestBranchAndBound:
    def test_matches_brute_force(self):
        for seed in range(4):
            inst = random_instance(seed, rows=2, cols=4)
            result = branch_and_bound(inst)
            assert result.extra["proved_optimal"]
            assert result.max_apl == pytest.approx(brute_force_opt(inst))

    def test_warm_start_helps_and_preserves_optimum(self):
        inst = random_instance(11, rows=3, cols=3)
        cold = branch_and_bound(inst)
        warm = branch_and_bound(inst, warm_start=sort_select_swap(inst).mapping)
        assert warm.max_apl == pytest.approx(cold.max_apl)
        assert warm.extra["nodes"] <= cold.extra["nodes"]

    def test_sss_matches_exact_on_small_instances(self):
        """On 3x3 instances SSS should be optimal or within ~2%."""
        gaps = []
        for seed in range(8):
            inst = random_instance(seed + 100, rows=3, cols=3)
            exact = branch_and_bound(inst)
            sss = sort_select_swap(inst)
            gaps.append(sss.max_apl / exact.max_apl - 1)
        assert np.mean(gaps) < 0.02
        assert max(gaps) < 0.08

    def test_size_limit_enforced(self, c1_instance):
        with pytest.raises(ValueError):
            branch_and_bound(c1_instance)

    def test_node_limit_returns_incumbent(self):
        inst = random_instance(5, rows=3, cols=3)
        limits = ExactSolverLimits(max_nodes=1, time_limit_seconds=60)
        result = branch_and_bound(
            inst, limits=limits, warm_start=Mapping(np.arange(inst.n))
        )
        # Not proved optimal, but a valid mapping comes back.
        assert sorted(result.mapping.perm.tolist()) == list(range(inst.n))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_never_above_any_heuristic(self, seed):
        inst = random_instance(seed, rows=2, cols=3)
        exact = branch_and_bound(inst)
        sss = sort_select_swap(inst)
        assert exact.max_apl <= sss.max_apl + 1e-9
