"""Tests of the weighted-QoS and capacity generalisations plus the GA and
cluster-SA baselines."""

import numpy as np
import pytest

from repro.core.baselines import simulated_annealing
from repro.core.capacity import (
    CapacityMapping,
    evaluate_capacity_mapping,
    slot_instance,
    solve_capacity_obm,
)
from repro.core.genetic import GAConfig, genetic_algorithm, _pmx
from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.weighted import solve_weighted_obm, weighted_max_apl
from repro.core.workload import Application, Workload
from repro.core.sss import sort_select_swap
from repro.utils.rng import as_rng


class TestWeightedOBM:
    def test_uniform_weights_equal_unweighted(self, small_instance):
        result, wev = solve_weighted_obm(small_instance, [1.0, 1.0])
        plain = sort_select_swap(small_instance)
        assert wev.weighted_max == pytest.approx(plain.max_apl, rel=0.01)

    def test_heavier_weight_lowers_that_apps_apl(self, c1_instance):
        plain = sort_select_swap(c1_instance)
        result, wev = solve_weighted_obm(c1_instance, [1.6, 1.0, 1.0, 1.0])
        assert result.evaluation.apls[0] < plain.evaluation.apls[0]

    def test_weighted_objective_improves(self, c1_instance):
        weights = [1.4, 1.0, 1.0, 1.0]
        plain = sort_select_swap(c1_instance)
        baseline = weighted_max_apl(c1_instance, plain.mapping, weights)
        _, wev = solve_weighted_obm(c1_instance, weights)
        assert wev.weighted_max <= baseline.weighted_max + 1e-9

    def test_weighted_evaluation_values(self, small_instance):
        m = sort_select_swap(small_instance).mapping
        wev = weighted_max_apl(small_instance, m, [2.0, 1.0])
        assert wev.weighted_apls[0] == pytest.approx(2.0 * wev.evaluation.apls[0])

    def test_weight_validation(self, small_instance):
        m = sort_select_swap(small_instance).mapping
        with pytest.raises(ValueError):
            weighted_max_apl(small_instance, m, [1.0])
        with pytest.raises(ValueError):
            weighted_max_apl(small_instance, m, [1.0, -1.0])

    def test_surrogate_objective_equals_weighted_objective(self):
        """Property behind the reduction: the surrogate instance's
        unweighted max-APL of any mapping equals the original instance's
        weighted max-APL of the same mapping."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.weighted import _check_weights, _reweighted_instance
        from repro.core.problem import Mapping

        @given(seed=st.integers(0, 1000))
        @settings(max_examples=20, deadline=None)
        def check(seed):
            rng = np.random.default_rng(seed)
            model = MeshLatencyModel(Mesh.square(4))
            apps = (
                Application("a", rng.uniform(0.2, 3, 8), rng.uniform(0, 1, 8)),
                Application("b", rng.uniform(0.2, 3, 8), rng.uniform(0, 1, 8)),
            )
            from repro.core.problem import OBMInstance

            inst = OBMInstance(model, Workload(apps))
            w = _check_weights(inst, rng.uniform(0.5, 3.0, 2))
            surrogate = _reweighted_instance(inst, w)
            mapping = Mapping(rng.permutation(16))
            surrogate_ev = surrogate.evaluate(mapping)
            truth = weighted_max_apl(inst, mapping, w)
            assert surrogate_ev.max_apl == pytest.approx(truth.weighted_max)

        check()

    def test_weights_extend_over_padding(self):
        model = MeshLatencyModel(Mesh.square(4))
        apps = (Application("a", np.ones(6), np.ones(6) * 0.1),
                Application("b", np.ones(6) * 2, np.ones(6) * 0.2))
        from repro.core.problem import OBMInstance

        inst = OBMInstance(model, Workload(apps))  # padded to 16
        result, wev = solve_weighted_obm(inst, [1.2, 1.0])
        assert np.isfinite(wev.weighted_max)


class TestCapacityOBM:
    def make(self, capacity=2, threads=32):
        rng = as_rng(3)
        model = MeshLatencyModel(Mesh.square(4))
        per_app = threads // 2
        apps = (
            Application("a", rng.uniform(0.5, 2, per_app), rng.uniform(0, 0.3, per_app)),
            Application("b", rng.uniform(2, 5, per_app), rng.uniform(0, 0.3, per_app)),
        )
        return model, Workload(apps)

    def test_respects_capacity(self):
        model, wl = self.make()
        _, capmap = solve_capacity_obm(model, wl, capacity=2)
        assert capmap.occupancy.max() <= 2
        assert capmap.tile_of_thread.size == 32

    def test_folded_metrics_match_slot_metrics(self):
        model, wl = self.make()
        result, capmap = solve_capacity_obm(model, wl, capacity=2)
        ev = evaluate_capacity_mapping(model, wl, capmap)
        assert ev.max_apl == pytest.approx(result.evaluation.max_apl)
        assert ev.g_apl == pytest.approx(result.evaluation.g_apl)

    def test_partial_occupancy(self):
        model, wl = self.make(threads=20)
        _, capmap = solve_capacity_obm(model, wl, capacity=2)
        assert capmap.occupancy.sum() == 20

    def test_too_many_threads_rejected(self):
        model, wl = self.make(threads=40)
        with pytest.raises(ValueError):
            solve_capacity_obm(model, wl, capacity=2)

    def test_invalid_capacity(self):
        model, wl = self.make()
        with pytest.raises(ValueError):
            slot_instance(model, wl, 0)

    def test_capacity_mapping_validation(self):
        with pytest.raises(ValueError):
            CapacityMapping(np.array([0, 0, 0]), capacity=2, n_tiles=4)
        with pytest.raises(ValueError):
            CapacityMapping(np.array([5]), capacity=1, n_tiles=4)

    def test_capacity_one_equals_standard(self):
        """With capacity 1 the slot problem is the ordinary OBM."""
        from repro.core.problem import OBMInstance

        model, wl = self.make(threads=16)
        result, capmap = solve_capacity_obm(model, wl, capacity=1)
        plain = sort_select_swap(OBMInstance(model, wl))
        assert result.evaluation.max_apl == pytest.approx(plain.max_apl)

    def test_works_with_global(self):
        from repro.core.baselines import global_mapping

        model, wl = self.make()
        result, capmap = solve_capacity_obm(model, wl, 2, algorithm=global_mapping)
        assert capmap.occupancy.max() <= 2


class TestGeneticAlgorithm:
    def test_pmx_produces_permutation(self):
        rng = as_rng(0)
        for _ in range(50):
            a = rng.permutation(12)
            b = rng.permutation(12)
            child = _pmx(a, b, rng)
            assert sorted(child.tolist()) == list(range(12))

    def test_ga_valid_and_deterministic(self, small_instance):
        cfg = GAConfig(population=16, generations=10)
        r1 = genetic_algorithm(small_instance, cfg, seed=4)
        r2 = genetic_algorithm(small_instance, cfg, seed=4)
        assert sorted(r1.mapping.perm.tolist()) == list(range(small_instance.n))
        assert np.array_equal(r1.mapping.perm, r2.mapping.perm)

    def test_ga_improves_over_generations(self, small_instance):
        short = genetic_algorithm(small_instance, GAConfig(population=24, generations=3), seed=1)
        long = genetic_algorithm(small_instance, GAConfig(population=24, generations=60), seed=1)
        assert long.max_apl <= short.max_apl + 1e-9

    def test_ga_loses_to_sss(self, c1_instance):
        """The paper's Section IV claim, made testable: evolutionary search
        at comparable budget does not beat SSS."""
        ga = genetic_algorithm(c1_instance, GAConfig(population=48, generations=40), seed=2)
        sss = sort_select_swap(c1_instance)
        assert sss.max_apl <= ga.max_apl + 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population=1)
        with pytest.raises(ValueError):
            GAConfig(tournament=100)
        with pytest.raises(ValueError):
            GAConfig(crossover_rate=2.0)
        with pytest.raises(ValueError):
            GAConfig(elite=64, population=64)


class TestClusterSA:
    def test_cluster_move_valid(self, small_instance):
        r = simulated_annealing(small_instance, n_iters=500, seed=0, move="cluster")
        assert sorted(r.mapping.perm.tolist()) == list(range(small_instance.n))
        assert r.extra["move"] == "cluster"

    def test_cluster_evaluation_consistent(self, small_instance):
        from repro.core.metrics import evaluate_mapping

        r = simulated_annealing(small_instance, n_iters=800, seed=3, move="cluster")
        fresh = evaluate_mapping(
            small_instance.workload, r.mapping.perm,
            small_instance.tc, small_instance.tm,
        )
        assert r.max_apl == pytest.approx(fresh.max_apl)

    def test_invalid_move_kind(self, small_instance):
        with pytest.raises(ValueError):
            simulated_annealing(small_instance, n_iters=10, move="teleport")

    def test_invalid_cluster_size(self, small_instance):
        with pytest.raises(ValueError):
            simulated_annealing(
                small_instance, n_iters=10, move="cluster", cluster_size=100
            )
