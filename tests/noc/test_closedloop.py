"""Tests of the closed-loop (blocking-thread) simulator."""

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import Mapping, OBMInstance
from repro.core.workload import Application, Workload
from repro.noc.closedloop import (
    ClosedLoopConfig,
    ClosedLoopSimulator,
)


@pytest.fixture
def instance():
    model = MeshLatencyModel(Mesh.square(4))
    apps = (
        Application.uniform("a", 8, cache_rate=8.0, mem_rate=1.0),
        Application.uniform("b", 8, cache_rate=8.0, mem_rate=1.0),
    )
    return OBMInstance(model, Workload(apps))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopConfig(mshrs_per_thread=0)
        with pytest.raises(ValueError):
            ClosedLoopConfig(cycles_per_unit=0)
        with pytest.raises(ValueError):
            ClosedLoopConfig(l2_latency=-1)


class TestClosedLoop:
    def test_progress_and_latency_recorded(self, instance):
        sim = ClosedLoopSimulator(instance, Mapping(np.arange(16)), seed=0)
        result = sim.run(4_000)
        assert result.completed.sum() > 50
        assert set(result.apl_by_app) == {0, 1}
        for apl in result.apl_by_app.values():
            # Round trip >= two zero-load traversals + L2 latency.
            assert apl > 10
        for progress in result.progress_by_app.values():
            assert 0 < progress <= 1.3  # achieved close to offered, not above much

    def test_outstanding_bounded_by_mshrs(self, instance):
        config = ClosedLoopConfig(mshrs_per_thread=2)
        sim = ClosedLoopSimulator(instance, Mapping(np.arange(16)), config, seed=1)
        sim.run(1_500)
        for state in sim.states.values():
            assert 0 <= state.outstanding <= 2

    def test_memory_latency_visible_in_round_trips(self, instance):
        """With memory-only traffic the round trip must include the DRAM
        latency."""
        model = instance.model
        apps = (Application.uniform("m", 16, cache_rate=0.0, mem_rate=4.0),)
        inst = OBMInstance(model, Workload(apps))
        sim = ClosedLoopSimulator(inst, Mapping(np.arange(16)), seed=2)
        result = sim.run(4_000)
        assert result.apl_by_app[0] > 128

    def test_deterministic(self, instance):
        a = ClosedLoopSimulator(instance, Mapping(np.arange(16)), seed=5).run(2_000)
        b = ClosedLoopSimulator(instance, Mapping(np.arange(16)), seed=5).run(2_000)
        assert np.array_equal(a.completed, b.completed)

    def test_invalid_cycles(self, instance):
        sim = ClosedLoopSimulator(instance, Mapping(np.arange(16)), seed=0)
        with pytest.raises(ValueError):
            sim.run(0)

    def test_throughput_tracks_rates(self, instance):
        """A heavier app completes proportionally more requests."""
        model = instance.model
        apps = (
            Application.uniform("slow", 8, cache_rate=4.0, mem_rate=0.5),
            Application.uniform("fast", 8, cache_rate=16.0, mem_rate=2.0),
        )
        inst = OBMInstance(model, Workload(apps))
        sim = ClosedLoopSimulator(inst, Mapping(np.arange(16)), seed=3)
        result = sim.run(6_000)
        assert result.throughput_by_app[1] > 2 * result.throughput_by_app[0]
        # ...but normalised progress is comparable (both unsaturated).
        assert result.progress_spread() < 0.4
