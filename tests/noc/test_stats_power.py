"""Tests of latency statistics and the power model."""

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.noc.packet import Packet, TrafficClass
from repro.noc.power import ActivityCounts, PowerModel, PowerParams
from repro.noc.stats import LatencyStats, LatencySummary


def delivered(src, dst, created, ejected, app=-1, cls=TrafficClass.CACHE_REQUEST):
    p = Packet(src, dst, cls, created, app=app)
    p.injected_at = created
    p.ejected_at = ejected
    return p


class TestLatencySummary:
    def test_of(self):
        s = LatencySummary.of(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.max == 4.0
        assert s.p50 == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.of(np.array([]))


class TestLatencyStats:
    def test_apl_by_app(self):
        stats = LatencyStats()
        stats.add(delivered(0, 1, 0, 10, app=0))
        stats.add(delivered(0, 2, 0, 20, app=0))
        stats.add(delivered(0, 3, 0, 30, app=1))
        apls = stats.apl_by_app()
        assert apls[0] == pytest.approx(15.0)
        assert apls[1] == pytest.approx(30.0)
        assert stats.max_apl() == pytest.approx(30.0)
        assert stats.dev_apl() == pytest.approx(7.5)
        assert stats.g_apl() == pytest.approx(20.0)

    def test_by_class(self):
        stats = LatencyStats()
        stats.add(delivered(0, 1, 0, 10))
        stats.add(delivered(0, 1, 0, 40, cls=TrafficClass.MEM_REQUEST))
        assert stats.by_class(TrafficClass.CACHE_REQUEST).mean == 10
        assert stats.by_class(TrafficClass.MEM_REQUEST).mean == 40
        assert stats.classes() == [TrafficClass.CACHE_REQUEST, TrafficClass.MEM_REQUEST]

    def test_local_exclusion_mode(self):
        stats = LatencyStats(include_local=False)
        stats.add(delivered(3, 3, 0, 0))
        assert stats.n_packets == 0
        assert stats.dropped_local == 1

    def test_empty_queries_raise(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.g_apl()
        with pytest.raises(ValueError):
            stats.max_apl()

    def test_report_renders(self):
        stats = LatencyStats()
        stats.add(delivered(0, 1, 0, 12, app=2))
        text = stats.report()
        assert "app 2" in text and "CACHE_REQUEST" in text

    def test_by_app_summary(self):
        stats = LatencyStats()
        stats.add(delivered(0, 1, 0, 10, app=0))
        stats.add(delivered(0, 2, 0, 20, app=0))
        s = stats.by_app(0)
        assert s.count == 2
        assert s.mean == pytest.approx(15.0)

    def test_histogram_by_app(self):
        from repro.obs.metrics import LATENCY_BUCKETS

        stats = LatencyStats()
        for lat in (10, 20, 30):
            stats.add(delivered(0, 1, 0, lat, app=0))
        stats.add(delivered(0, 2, 0, 40, app=1))
        hists = stats.histogram_by_app()
        assert sorted(hists) == [0, 1]
        assert hists[0].total == 3
        assert hists[1].total == 1
        assert hists[0].bounds == LATENCY_BUCKETS  # shared layout: mergeable
        assert hists[0].sum == pytest.approx(60.0)

    def test_percentiles_by_app_match_numpy(self):
        stats = LatencyStats()
        latencies = list(range(1, 101))
        for lat in latencies:
            stats.add(delivered(0, 1, 0, lat, app=0))
        pct = stats.percentiles_by_app()[0]
        assert pct["p50"] == pytest.approx(np.percentile(latencies, 50))
        assert pct["p95"] == pytest.approx(np.percentile(latencies, 95))
        assert pct["p99"] == pytest.approx(np.percentile(latencies, 99))

    def test_histogram_percentiles_bracket_exact(self):
        """Bucketed quantiles agree with exact ones to within one bucket."""
        stats = LatencyStats()
        for lat in range(5, 200, 3):
            stats.add(delivered(0, 1, 0, lat, app=0))
        exact = stats.percentiles_by_app()[0]
        bucketed = stats.histogram_by_app()[0].percentiles()
        for key in ("p50", "p95", "p99"):
            # Buckets are 2-per-octave: within ~50% relative is guaranteed.
            assert bucketed[key] == pytest.approx(exact[key], rel=0.5)


class TestPowerModel:
    def test_energy_accumulation(self):
        model = PowerModel(Mesh.square(2))
        counts = ActivityCounts(
            flit_router_traversals=100,
            flit_link_traversals=80,
            buffer_writes=100,
            cycles=1000,
        )
        p = model.params
        expected = (
            100 * (p.e_router_traversal + p.e_buffer_read)
            + 100 * p.e_buffer_write
            + 80 * p.e_link_traversal
        )
        assert model.dynamic_energy(counts) == pytest.approx(expected)

    def test_power_scales_with_activity(self):
        model = PowerModel(Mesh.square(4))
        low = ActivityCounts(100, 80, 100, 1000)
        high = ActivityCounts(1000, 800, 1000, 1000)
        assert model.power(high).dynamic == pytest.approx(
            10 * model.power(low).dynamic
        )

    def test_static_scales_with_routers(self):
        small = PowerModel(Mesh.square(2))
        large = PowerModel(Mesh.square(4))
        counts = ActivityCounts(1, 1, 1, 100)
        assert large.power(counts).static == pytest.approx(
            4 * small.power(counts).static
        )

    def test_total(self):
        model = PowerModel(Mesh.square(2))
        b = model.power(ActivityCounts(10, 10, 10, 100))
        assert b.total == pytest.approx(b.dynamic + b.static)

    def test_analytic_counts(self):
        model = PowerModel(Mesh.square(4))
        counts = model.analytic_counts(
            hops_per_packet=3.0, packets_per_cycle=0.5, flits_per_packet=2.0, cycles=1000
        )
        # 500 packets * 2 flits = 1000 flits; (3+1) routers, 3 links each.
        assert counts.flit_router_traversals == 4000
        assert counts.flit_link_traversals == 3000

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PowerParams(e_link_traversal=0)
        with pytest.raises(ValueError):
            ActivityCounts(1, 1, 1, 0)
        with pytest.raises(ValueError):
            ActivityCounts(-1, 1, 1, 10)
