"""Runtime invariant checker: clean runs stay silent, corruption trips.

The checker's value is *negative* testing — it must fire on states the
engine can never legally reach.  Those states are manufactured here by
corrupting live networks directly (occupancy counters, credit counters,
packet timestamps) and by wedging a router permanently to trip the
watchdog.
"""

from __future__ import annotations

import pytest

from repro.core.latency import Mesh
from repro.noc import (
    FaultSchedule,
    InvariantChecker,
    InvariantConfig,
    InvariantViolation,
    Network,
    Packet,
    Port,
    RouterStallWindow,
    TrafficClass,
    UniformRandomTraffic,
)


def _packet(src: int, dst: int, length: int = 1) -> Packet:
    return Packet(
        src=src,
        dst=dst,
        traffic_class=TrafficClass.CACHE_REQUEST,
        created_at=0,
        length=length,
    )


def _busy_network(check_interval: int = 1) -> Network:
    """A network mid-traffic with at least one occupied router."""
    net = Network(
        Mesh.square(4),
        invariants=InvariantConfig(check_interval=check_interval),
    )
    net.submit(_packet(0, 15, length=5))
    for _ in range(6):
        net.step()
    assert any(r._occupancy for r in net.routers)
    return net


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            InvariantConfig(check_interval=0)
        with pytest.raises(ValueError):
            InvariantConfig(watchdog_cycles=0)

    def test_coercion_forms(self):
        mesh = Mesh.square(3)
        assert Network(mesh).invariants is None
        assert Network(mesh, invariants=False).invariants is None
        assert isinstance(Network(mesh, invariants=True).invariants, InvariantChecker)
        cfg = InvariantConfig(check_interval=4)
        assert Network(mesh, invariants=cfg).invariants.config is cfg
        with pytest.raises(TypeError):
            Network(mesh, invariants=object())


class TestCleanRuns:
    def test_traffic_run_is_silent(self):
        mesh = Mesh.square(4)
        net = Network(mesh, invariants=InvariantConfig(check_interval=1))
        traffic = UniformRandomTraffic(mesh.n_tiles, 0.08, seed=2)
        for _ in range(400):
            for p in traffic.packets_for_cycle(net.now):
                net.submit(p)
            net.step()
        net.drain()
        checker = net.invariants
        assert checker.checks_run > 400
        assert checker.packets_checked == len(
            [p for p in net.delivered if p.src != p.dst]
        )
        assert checker.last_dump is None

    def test_checking_does_not_change_results(self):
        mesh = Mesh.square(4)

        def run(invariants) -> list[int]:
            net = Network(mesh, invariants=invariants)
            traffic = UniformRandomTraffic(mesh.n_tiles, 0.08, seed=9)
            for _ in range(300):
                for p in traffic.packets_for_cycle(net.now):
                    net.submit(p)
                net.step()
            net.drain()
            return [p.latency for p in net.delivered]

        assert run(None) == run(InvariantConfig(check_interval=1))


class TestCorruptionDetection:
    def test_occupancy_counter_drift(self):
        net = _busy_network()
        tile = next(t for t in net._active if net.routers[t]._occupancy)
        net.routers[tile]._occupancy += 1
        with pytest.raises(InvariantViolation, match="occupancy"):
            net.invariants.sweep()

    def test_credit_leak(self):
        net = _busy_network()
        tile = next(t for t in net._active if net.routers[t]._occupancy)
        net.routers[tile].credits[Port.EAST][0] -= 1
        with pytest.raises(InvariantViolation, match="credit"):
            net.invariants.sweep()

    def test_flit_count_drift(self):
        net = _busy_network()
        net.flits_injected += 1
        with pytest.raises(InvariantViolation, match="conservation"):
            net.invariants.sweep()

    def test_disabled_checks_stay_quiet(self):
        net = Network(
            Mesh.square(4),
            invariants=InvariantConfig(
                check_interval=1,
                check_conservation=False,
                check_credits=False,
                check_occupancy=False,
            ),
        )
        net.submit(_packet(0, 15, length=5))
        for _ in range(6):
            net.step()
        net.flits_injected += 1
        tile = next(t for t in net._active if net.routers[t]._occupancy)
        net.routers[tile].credits[Port.EAST][0] -= 1
        net.invariants.sweep()  # nothing enabled, nothing raised

    def test_latency_floor(self):
        mesh = Mesh.square(4)
        net = Network(mesh, invariants=True)
        # A 3-hop, 5-flit packet claiming a 2-cycle flight is impossible.
        packet = _packet(0, 3, length=5)
        packet.injected_at = 10
        packet.ejected_at = 12
        with pytest.raises(InvariantViolation, match="zero-load floor"):
            net.invariants.on_delivered(packet)

    def test_latency_floor_accepts_the_actual_minimum(self):
        mesh = Mesh.square(4)
        net = Network(mesh, invariants=True)
        net.submit(_packet(0, 3, length=5))
        net.drain()
        # An uncontended run lands exactly on the floor; on_delivered was
        # already called from inside drain without raising.
        assert net.invariants.packets_checked == 1


class TestWatchdog:
    def test_permanent_stall_trips_with_dump(self):
        mesh = Mesh.square(4)
        # Router 1 freezes forever while holding the packet's flits.
        net = Network(
            mesh,
            faults=FaultSchedule(
                stall_windows=(RouterStallWindow(1, 0, 10**9),)
            ),
            invariants=InvariantConfig(check_interval=1, watchdog_cycles=50),
        )
        net.submit(_packet(0, 3, length=5))
        # Step cycle-by-cycle: drain()'s idle fast-forward would jump
        # straight to the (very distant) stall-end event instead.
        with pytest.raises(InvariantViolation, match="watchdog") as excinfo:
            net.run(500)
        dump = excinfo.value.dump
        assert dump is not None and "invariant dump" in dump
        assert "stalled routers: [1]" in dump
        assert net.invariants.last_dump == dump

    def test_watchdog_outlasts_bounded_stalls(self):
        mesh = Mesh.square(4)
        net = Network(
            mesh,
            faults=FaultSchedule(
                stall_windows=(RouterStallWindow(1, 2, 40),)
            ),
            invariants=InvariantConfig(check_interval=1, watchdog_cycles=100),
        )
        net.submit(_packet(0, 3, length=5))
        net.drain()  # stall ends before the watchdog window elapses
        assert len(net.delivered) == 1

    def test_dump_state_describes_live_traffic(self):
        net = _busy_network()
        dump = net.invariants.dump_state()
        assert f"cycle {net.now}" in dump
        assert "router" in dump
