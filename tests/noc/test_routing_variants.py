"""Tests of the alternative routing functions, arbitration policies, and
network telemetry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import Mesh
from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import Packet, TrafficClass
from repro.noc.router import RouterConfig
from repro.noc.routing import (
    ROUTE_FUNCTIONS,
    Port,
    route_path,
    west_first_route,
    xy_route,
    yx_route,
)
from repro.noc.telemetry import NetworkTelemetry


class TestRouteFunctions:
    @pytest.mark.parametrize("name", sorted(ROUTE_FUNCTIONS))
    def test_all_routes_minimal(self, name):
        mesh = Mesh.square(5)
        fn = ROUTE_FUNCTIONS[name]
        rng = np.random.default_rng(0)
        for _ in range(100):
            src, dst = rng.integers(25, size=2)
            path = route_path(mesh, int(src), int(dst), fn)
            assert len(path) - 1 == mesh.hops(int(src), int(dst))

    def test_yx_is_transpose_of_xy(self):
        mesh = Mesh.square(4)
        # From (0,0) to (2,2): XY goes EAST first, YX goes SOUTH first.
        dst = mesh.tile(2, 2)
        assert xy_route(mesh, 0, dst) == Port.EAST
        assert yx_route(mesh, 0, dst) == Port.SOUTH

    def test_west_first_goes_west_first(self):
        mesh = Mesh.square(4)
        src = mesh.tile(0, 3)
        dst = mesh.tile(3, 0)
        assert west_first_route(mesh, src, dst) == Port.WEST

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_west_first_never_turns_into_west(self, seed):
        """The turn-model invariant: after any non-WEST move, the packet
        never moves WEST again."""
        mesh = Mesh(5, 6)
        rng = np.random.default_rng(seed)
        src, dst = rng.integers(mesh.n_tiles, size=2)
        path = route_path(mesh, int(src), int(dst), west_first_route)
        moved_non_west = False
        for a, b in zip(path, path[1:]):
            _, ca = mesh.coords(a)
            _, cb = mesh.coords(b)
            if cb < ca:  # WEST move
                assert not moved_non_west
            else:
                moved_non_west = True

    def test_all_routes_local_at_destination(self):
        mesh = Mesh.square(3)
        for fn in ROUTE_FUNCTIONS.values():
            assert fn(mesh, 4, 4) == Port.LOCAL


class TestNetworkRoutingOption:
    @pytest.mark.parametrize("routing", sorted(ROUTE_FUNCTIONS))
    def test_network_delivers_under_each_routing(self, routing):
        net = Network(Mesh.square(4), NetworkConfig(routing=routing))
        rng = np.random.default_rng(1)
        for _ in range(80):
            src, dst = rng.integers(16, size=2)
            net.submit(Packet(int(src), int(dst), TrafficClass.CACHE_REQUEST, net.now))
            net.step()
        net.drain()
        net.assert_conserved()

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(routing="adaptive-magic")

    def test_zero_load_latency_routing_invariant(self):
        """All minimal routes produce identical uncontended latency."""
        latencies = {}
        for routing in ROUTE_FUNCTIONS:
            net = Network(Mesh.square(4), NetworkConfig(routing=routing))
            p = Packet(1, 14, TrafficClass.CACHE_REQUEST, net.now)
            net.submit(p)
            net.drain()
            latencies[routing] = p.latency
        assert len(set(latencies.values())) == 1


class TestArbitration:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(arbitration="random")

    @pytest.mark.parametrize("arbitration", ["round_robin", "oldest_first"])
    def test_network_works_under_policy(self, arbitration):
        config = NetworkConfig(router=RouterConfig(arbitration=arbitration))
        net = Network(Mesh.square(4), config)
        rng = np.random.default_rng(2)
        for _ in range(60):
            src, dst = rng.integers(16, size=2)
            if src != dst:
                net.submit(Packet(int(src), int(dst), TrafficClass.CACHE_REPLY, net.now))
            net.step()
        net.drain()
        net.assert_conserved()

    def test_oldest_first_reduces_tail_latency_on_hotspot(self):
        """Age-based arbitration should not increase the worst latency of
        a contended hotspot (it serves stragglers first)."""
        results = {}
        for arbitration in ("round_robin", "oldest_first"):
            config = NetworkConfig(router=RouterConfig(arbitration=arbitration))
            net = Network(Mesh.square(4), config)
            packets = []
            for src in (0, 2, 8, 10):
                for _ in range(8):
                    p = Packet(src, 5, TrafficClass.CACHE_REPLY, net.now)
                    packets.append(p)
                    net.submit(p)
            net.drain()
            results[arbitration] = max(p.latency for p in packets)
        assert results["oldest_first"] <= results["round_robin"] * 1.25


class TestTelemetry:
    def test_snapshot_counts_activity(self):
        net = Network(Mesh.square(4))
        telemetry = NetworkTelemetry(net)
        p = Packet(0, 15, TrafficClass.CACHE_REPLY, net.now)
        net.submit(p)
        net.drain()
        snap = telemetry.snapshot()
        # 5 flits x 6 hops of links each.
        assert snap.total_flit_hops == 5 * 6
        assert snap.router_flits.sum() == 5 * 7  # 7 routers traversed
        assert snap.cycles == net.now

    def test_reset_zeroes_baseline(self):
        net = Network(Mesh.square(4))
        telemetry = NetworkTelemetry(net)
        net.submit(Packet(0, 3, TrafficClass.CACHE_REQUEST, net.now))
        net.drain()
        telemetry.reset()
        assert telemetry.snapshot().total_flit_hops == 0

    def test_router_grid_shape(self):
        net = Network(Mesh.square(4))
        telemetry = NetworkTelemetry(net)
        assert telemetry.snapshot().router_grid(net.mesh).shape == (4, 4)

    def test_hottest_links(self):
        net = Network(Mesh.square(4))
        telemetry = NetworkTelemetry(net)
        for _ in range(5):
            net.submit(Packet(0, 3, TrafficClass.CACHE_REQUEST, net.now))
            net.drain()
        hottest = telemetry.snapshot().hottest_links(2)
        assert len(hottest) == 2
        (tile, port), util = hottest[0]
        assert port == Port.EAST  # all traffic flows east along row 0
        assert util > 0
