"""Tests of request/reply transaction tracking."""

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import Mapping, OBMInstance
from repro.core.workload import Application, Workload
from repro.noc.packet import Packet, TrafficClass
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic
from repro.noc.transactions import TransactionTracker


def delivered(src, dst, cls, created, ejected, thread=0):
    p = Packet(src, dst, cls, created, thread=thread)
    p.injected_at = created
    p.ejected_at = ejected
    return p


class TestMatching:
    def test_simple_pair(self):
        tracker = TransactionTracker()
        req = delivered(0, 5, TrafficClass.CACHE_REQUEST, 0, 10)
        rep = delivered(5, 0, TrafficClass.CACHE_REPLY, 16, 30)
        tracker.observe(req)
        tracker.observe(rep)
        assert len(tracker.transactions) == 1
        t = tracker.transactions[0]
        assert t.round_trip == 30
        assert t.network_part == 10 + 14
        assert t.service_part == 6
        assert not t.is_memory

    def test_fifo_matching_same_stream(self):
        tracker = TransactionTracker()
        r1 = delivered(0, 5, TrafficClass.CACHE_REQUEST, 0, 10)
        r2 = delivered(0, 5, TrafficClass.CACHE_REQUEST, 2, 12)
        p1 = delivered(5, 0, TrafficClass.CACHE_REPLY, 16, 28)
        p2 = delivered(5, 0, TrafficClass.CACHE_REPLY, 18, 32)
        tracker.observe_all([r1, r2, p1, p2])
        assert len(tracker.transactions) == 2
        assert tracker.transactions[0].request is r1
        assert tracker.transactions[1].request is r2

    def test_unmatched_reply_counted(self):
        tracker = TransactionTracker()
        tracker.observe(delivered(5, 0, TrafficClass.CACHE_REPLY, 10, 20))
        assert tracker.unmatched_replies == 1
        assert not tracker.transactions

    def test_memory_vs_cache_split(self):
        tracker = TransactionTracker()
        tracker.observe_all(
            [
                delivered(0, 5, TrafficClass.CACHE_REQUEST, 0, 8),
                delivered(5, 0, TrafficClass.CACHE_REPLY, 14, 24),
                delivered(1, 0, TrafficClass.MEM_REQUEST, 0, 6, thread=1),
                delivered(0, 1, TrafficClass.MEM_REPLY, 134, 140, thread=1),
            ]
        )
        assert tracker.round_trips(memory=False).tolist() == [24.0]
        assert tracker.round_trips(memory=True).tolist() == [140.0]
        s = tracker.summary()
        assert s["cache_count"] == 1 and s["mem_count"] == 1
        assert s["mem_service"] == 128

    def test_undelivered_rejected(self):
        tracker = TransactionTracker()
        with pytest.raises(ValueError):
            tracker.observe(Packet(0, 1, TrafficClass.CACHE_REQUEST, 0))


class TestEndToEnd:
    def test_simulated_round_trips(self):
        """Full loop: mapped traffic with replies through the simulator;
        memory round-trips must exceed cache round-trips by roughly the
        DRAM latency."""
        model = MeshLatencyModel(Mesh.square(4))
        apps = (
            Application.uniform("a", 8, cache_rate=10.0, mem_rate=4.0),
            Application.uniform("b", 8, cache_rate=10.0, mem_rate=4.0),
        )
        instance = OBMInstance(model, Workload(apps))
        traffic = MappedWorkloadTraffic(
            instance, Mapping(np.arange(16)),
            cycles_per_unit=1000, generate_replies=True,
            l2_latency=6, memory_latency=128, seed=0,
        )
        sim = NoCSimulator(instance.mesh, traffic)
        sim.run(warmup=500, measure=8_000)
        tracker = TransactionTracker()
        tracker.observe_all(
            [p for p in sim.network.delivered if p.created_at >= 500]
        )
        s = tracker.summary()
        assert s["cache_count"] > 20 and s["mem_count"] > 5
        # DRAM latency dominates the memory round trip.
        assert s["mem_round_trip"] > s["cache_round_trip"] + 100
        assert 100 < s["mem_service"] < 160
        assert 0 < s["cache_service"] < 20
