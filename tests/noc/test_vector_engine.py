"""Golden equivalence and API tests for the vector (SoA) engine.

The vector engine must be *bit-identical* to the fast path: same delivered
latency histogram, per-app APLs, activity counts, power and delivery
totals, for the same seeds.  These tests pin that across all C1-C8 paper
configurations, router/network variants (arbitration, VC classes, link
depth, routing function), saturation (which exercises the credit-hazard
sequential sweep), both engine modes (scalar and dense), and batched
execution (a batch entry must equal its own single run).  Also covers the
NoCSimulator fallback matrix and the simulate_batch API surface.
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro.core.latency import LatencyParams, Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.sss import sort_select_swap
from repro.experiments.base import standard_instance
from repro.noc.faults import FaultSchedule, LinkDownWindow
from repro.noc.network import NetworkConfig
from repro.noc.router import RouterConfig
from repro.noc.routing import Port
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic, UniformRandomTraffic
from repro.noc.vector_engine import VectorEngine, run_batch, simulate_batch
from repro.workloads.parsec import parsec_config


def _signature(res):
    """Everything a SimulationResult measures, in comparable form."""
    stats = res.stats
    return (
        sorted(Counter(stats._all).items()),
        sorted(stats.apl_by_app().items()),
        res.counts.flit_router_traversals,
        res.counts.flit_link_traversals,
        res.counts.buffer_writes,
        res.counts.cycles,
        res.power.total,
        res.packets_offered,
        res.packets_delivered,
    )


def _assert_vector_engine(res):
    """The result came from the vector engine family, with no fallback.

    Runs with ``REPRO_JIT`` set report ``vector-jit`` (so the whole
    golden suite doubles as the compiled-kernel bit-identity suite); in
    that case a fallback reason is legitimate when numba is missing.
    """
    assert res.engine in ("vector", "vector-jit")
    jit_env = os.environ.get("REPRO_JIT", "").strip().lower()
    if jit_env not in ("1", "true", "yes", "interp"):
        assert res.engine_fallback is None


def _mapped_traffic_factory(name: str, seed: int = 13):
    inst = standard_instance(name)
    mapping = sort_select_swap(inst).mapping

    def make():
        return MappedWorkloadTraffic(
            inst, mapping, cycles_per_unit=1000.0, generate_replies=True, seed=seed
        )

    return inst, make


@pytest.mark.parametrize("name", [f"C{i}" for i in range(1, 9)])
def test_vector_matches_fastpath_on_paper_configs(name):
    inst, make = _mapped_traffic_factory(name)
    fast = NoCSimulator(inst.mesh, make(), engine="fastpath").run(
        warmup=200, measure=800
    )
    vec = NoCSimulator(inst.mesh, make(), engine="vector").run(warmup=200, measure=800)
    assert _signature(vec) == _signature(fast)
    _assert_vector_engine(vec)
    assert fast.engine == "fastpath"


_VARIANTS = {
    "yx_oldest": lambda: NetworkConfig(
        router=RouterConfig(arbitration="oldest_first"), routing="yx"
    ),
    "vc_classes": lambda: NetworkConfig(router=RouterConfig(vcs_per_port=4, vc_classes=4)),
    "deep_link_west_first": lambda: NetworkConfig(link_latency=2, routing="west_first"),
}


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
def test_vector_matches_fastpath_on_network_variants(variant):
    mesh = Mesh.square(4)
    cfg = _VARIANTS[variant]()

    def make():
        return UniformRandomTraffic(mesh.n_tiles, 0.08, length=3, seed=7)

    fast = NoCSimulator(mesh, make(), cfg, engine="fastpath").run(
        warmup=200, measure=1000
    )
    vec = NoCSimulator(mesh, make(), cfg, engine="vector").run(warmup=200, measure=1000)
    assert _signature(vec) == _signature(fast)


@pytest.mark.parametrize("mode", ["scalar", "dense"])
def test_vector_matches_fastpath_under_saturation(mode):
    """0.35 flits/node/cycle x 5-flit packets saturates the 4x4 mesh, so
    credits hit zero and the dense path must take its exact sequential
    sweep (the scalar path arbitrates contention every cycle)."""
    mesh = Mesh.square(4)

    def make():
        return UniformRandomTraffic(mesh.n_tiles, 0.35, length=5, seed=11)

    fast = NoCSimulator(mesh, make(), engine="fastpath").run(warmup=100, measure=500)
    vec = VectorEngine(mesh, [make()], mode=mode).run(warmup=100, measure=500)[0]
    assert _signature(vec) == _signature(fast)


def test_dense_mode_matches_scalar_mode_single_instance():
    inst, make = _mapped_traffic_factory("C1")
    scalar = VectorEngine(inst.mesh, [make()], mode="scalar").run(
        warmup=200, measure=800
    )[0]
    dense = VectorEngine(inst.mesh, [make()], mode="dense").run(
        warmup=200, measure=800
    )[0]
    assert _signature(dense) == _signature(scalar)


def test_batch_entries_match_single_runs():
    """Each instance of a batch must be bit-identical to running it alone
    (and hence to the fast path): batching is a pure throughput axis."""
    inst, _ = _mapped_traffic_factory("C1")
    mapping = sort_select_swap(inst).mapping

    def make(seed):
        return MappedWorkloadTraffic(
            inst, mapping, cycles_per_unit=1000.0, generate_replies=True, seed=seed
        )

    seeds = (13, 14, 15)
    batch = run_batch(
        inst.mesh, [make(s) for s in seeds], warmup=200, measure=800
    )
    for seed, res in zip(seeds, batch):
        single = NoCSimulator(inst.mesh, make(seed), engine="fastpath").run(
            warmup=200, measure=800
        )
        assert _signature(res) == _signature(single)
        _assert_vector_engine(res)


def test_unknown_engine_rejected():
    mesh = Mesh.square(4)
    traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, seed=1)
    with pytest.raises(ValueError, match="unknown engine"):
        NoCSimulator(mesh, traffic, engine="warp")


def test_unknown_mode_rejected():
    mesh = Mesh.square(4)
    traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, seed=1)
    with pytest.raises(ValueError, match="unknown mode"):
        VectorEngine(mesh, [traffic], mode="simd")


def test_empty_traffic_list_rejected():
    with pytest.raises(ValueError, match="at least one"):
        VectorEngine(Mesh.square(4), [])


# ---------------------------------------------------------------------------
# Fallback matrix: anything needing per-event hooks forces the fast path.
# ---------------------------------------------------------------------------


def _c1_sim(**kwargs):
    inst, make = _mapped_traffic_factory("C1")
    return NoCSimulator(inst.mesh, make(), engine="vector", **kwargs)


def test_vector_falls_back_on_observability(caplog):
    from repro.obs import Observability, ObservabilityConfig, TraceConfig

    obs = Observability(ObservabilityConfig(trace=TraceConfig()))
    with caplog.at_level("WARNING", logger="repro.noc"):
        sim = _c1_sim(obs=obs)
    assert sim.engine == "fastpath"
    assert "observability" in sim.engine_fallback
    assert any("falling back to fastpath" in r.message for r in caplog.records)
    result = sim.run(warmup=100, measure=300)
    assert result.engine == "fastpath"
    assert "observability" in result.engine_fallback


def test_vector_falls_back_on_faults():
    schedule = FaultSchedule(
        link_windows=(LinkDownWindow(5, Port.EAST, 10, 50),)
    )
    sim = _c1_sim(faults=schedule)
    assert sim.engine == "fastpath"
    assert "fault" in sim.engine_fallback
    result = sim.run(warmup=100, measure=300)
    assert result.engine == "fastpath"
    assert "fault" in result.engine_fallback


def test_vector_falls_back_on_invariants():
    sim = _c1_sim(invariants=True)
    assert sim.engine == "fastpath"
    assert "invariant" in sim.engine_fallback
    result = sim.run(warmup=100, measure=300)
    assert result.engine == "fastpath"
    assert result.invariant_checks > 0


def test_vector_engine_used_when_nothing_attached():
    sim = _c1_sim()
    assert sim.engine == "vector"
    assert sim.engine_fallback is None


# ---------------------------------------------------------------------------
# simulate_batch API surface
# ---------------------------------------------------------------------------


def _small_instance(side: int = 4) -> OBMInstance:
    model = MeshLatencyModel(Mesh.square(side), LatencyParams())
    workload = parsec_config("C1", threads_per_app=model.n_tiles // 4)
    return OBMInstance(model, workload)


def test_simulate_batch_empty_returns_empty():
    assert simulate_batch([], seeds=[]) == []


def test_simulate_batch_seed_count_mismatch():
    inst = _small_instance()
    mapping = sort_select_swap(inst).mapping
    with pytest.raises(ValueError, match="seeds"):
        simulate_batch([(inst, mapping)], seeds=[1, 2])


def test_simulate_batch_mesh_shape_mismatch():
    a = _small_instance(4)
    b = _small_instance(8)
    ma = sort_select_swap(a).mapping
    mb = sort_select_swap(b).mapping
    with pytest.raises(ValueError, match="mesh"):
        simulate_batch([(a, ma), (b, mb)], seeds=[1, 2])


def test_simulate_batch_matches_single_runs():
    inst = _small_instance()
    mapping = sort_select_swap(inst).mapping
    batch = simulate_batch(
        [(inst, mapping), (inst, mapping)],
        seeds=[3, 4],
        warmup=100,
        measure=400,
        cycles_per_unit=1000.0,
    )
    assert len(batch) == 2
    for seed, res in zip((3, 4), batch):
        traffic = MappedWorkloadTraffic(
            inst, mapping, cycles_per_unit=1000.0, generate_replies=True, seed=seed
        )
        single = NoCSimulator(inst.mesh, traffic, engine="fastpath").run(
            warmup=100, measure=400
        )
        assert _signature(res) == _signature(single)
