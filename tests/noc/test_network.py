"""End-to-end tests of the cycle-level network: timing, conservation,
wormhole semantics, deadlock freedom."""

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import Packet, TrafficClass
from repro.noc.router import RouterConfig


def send_one(net: Network, src: int, dst: int, cls=TrafficClass.CACHE_REQUEST):
    p = Packet(src=src, dst=dst, traffic_class=cls, created_at=net.now)
    net.submit(p)
    net.drain()
    return p


class TestZeroLoadLatency:
    def test_single_flit_latency_formula(self):
        """Uncontended: latency = hops*(pipeline+link) + pipeline.

        With the Table 2 3-stage router and 1-cycle links: 4H + 3.
        """
        mesh = Mesh.square(8)
        net = Network(mesh)
        for dst in (1, 7, 63, 36):
            p = send_one(net, 0, dst)
            hops = mesh.hops(0, dst)
            assert p.latency == 4 * hops + 3

    def test_multi_flit_serialization(self):
        """A 5-flit packet's tail trails the head by 4 cycles."""
        mesh = Mesh.square(4)
        net = Network(mesh)
        p = send_one(net, 0, 15, TrafficClass.CACHE_REPLY)
        assert p.latency == 4 * 6 + 3 + 4

    def test_local_packet_bypasses_network(self):
        net = Network(Mesh.square(4))
        p = Packet(src=5, dst=5, traffic_class=TrafficClass.CACHE_REQUEST, created_at=net.now)
        net.submit(p)
        assert p.latency == 0
        assert net.flits_injected == 0

    def test_custom_pipeline_depth(self):
        config = NetworkConfig(router=RouterConfig(pipeline_depth=2))
        net = Network(Mesh.square(4), config)
        p = send_one(net, 0, 3)
        assert p.latency == 3 * 3 + 2  # hops*(2+1) + 2


class TestConservation:
    def test_flit_conservation_after_drain(self):
        net = Network(Mesh.square(4))
        rng = np.random.default_rng(0)
        for _ in range(200):
            src, dst = rng.integers(16, size=2)
            cls = TrafficClass.CACHE_REPLY if rng.random() < 0.3 else TrafficClass.CACHE_REQUEST
            net.submit(Packet(int(src), int(dst), cls, net.now))
            if rng.random() < 0.5:
                net.step()
        net.drain()
        net.assert_conserved()
        assert net.in_flight_flits == 0

    def test_all_packets_delivered(self):
        net = Network(Mesh.square(4))
        packets = []
        rng = np.random.default_rng(1)
        for _ in range(100):
            src, dst = rng.integers(16, size=2)
            p = Packet(int(src), int(dst), TrafficClass.CACHE_REQUEST, net.now)
            packets.append(p)
            net.submit(p)
        net.drain()
        assert len(net.delivered) == 100
        for p in packets:
            assert p.ejected_at is not None


class TestWormholeSemantics:
    def test_flits_arrive_in_order(self):
        """Tail must not overtake head; per-packet flit order is preserved
        implicitly by delivery completing exactly when the tail arrives."""
        net = Network(Mesh.square(4))
        p = send_one(net, 0, 12, TrafficClass.MEM_REPLY)
        assert p.ejected_at is not None
        assert p.ejected_at - p.injected_at >= 4  # >= serialization alone

    def test_interleaved_packets_same_route(self):
        net = Network(Mesh.square(4))
        ps = [
            Packet(0, 3, TrafficClass.CACHE_REPLY, net.now) for _ in range(4)
        ]
        for p in ps:
            net.submit(p)
        net.drain()
        assert all(p.ejected_at is not None for p in ps)
        # One injection link: packets serialise, later ones queue longer.
        latencies = [p.latency for p in ps]
        assert latencies == sorted(latencies)


class TestContention:
    def test_hotspot_queuing_increases_latency(self):
        """Many sources hammering one destination must see queueing."""
        mesh = Mesh.square(4)
        net = Network(mesh)
        zero_load = 4 * mesh.hops(0, 5) + 3
        ps = []
        for src in (0, 2, 8, 10, 12, 14):
            for _ in range(5):
                p = Packet(src, 5, TrafficClass.CACHE_REPLY, net.now)
                ps.append(p)
                net.submit(p)
        net.drain()
        assert max(p.latency for p in ps) > zero_load

    def test_no_deadlock_under_heavy_random_load(self):
        """XY routing on a mesh is deadlock-free; heavy random traffic must
        always drain."""
        mesh = Mesh.square(4)
        net = Network(mesh)
        rng = np.random.default_rng(42)
        for cycle in range(300):
            for src in range(16):
                if rng.random() < 0.2:
                    dst = int(rng.integers(16))
                    if dst != src:
                        cls = (
                            TrafficClass.CACHE_REPLY
                            if rng.random() < 0.5
                            else TrafficClass.CACHE_REQUEST
                        )
                        net.submit(Packet(src, dst, cls, net.now))
            net.step()
        net.drain(max_cycles=50_000)
        net.assert_conserved()

    def test_credits_never_overflow_buffers(self):
        """Stress the credit protocol: receive_flit raises on overflow."""
        mesh = Mesh.square(3)
        net = Network(mesh)
        rng = np.random.default_rng(3)
        for _ in range(500):
            src, dst = rng.integers(9, size=2)
            if src != dst:
                net.submit(Packet(int(src), int(dst), TrafficClass.MEM_REPLY, net.now))
            net.step()
        net.drain(max_cycles=100_000)  # no RuntimeError = credits held


class TestDrain:
    def test_drain_detects_stuck_network(self):
        net = Network(Mesh.square(2))
        net.submit(Packet(0, 3, TrafficClass.CACHE_REQUEST, 0))
        with pytest.raises(RuntimeError):
            net.drain(max_cycles=0)

    def test_drain_idempotent(self):
        net = Network(Mesh.square(2))
        net.drain()
        net.drain()
        assert net.delivered == []


class TestMisdelivery:
    def test_eject_wrong_tile_raises(self):
        from repro.noc.network import NetworkInterface
        from repro.noc.packet import Flit
        from repro.noc.router import Router, RouterConfig
        from repro.noc.routing import xy_route

        mesh = Mesh.square(2)
        router = Router(0, RouterConfig(), lambda t, d: xy_route(mesh, t, d))
        ni = NetworkInterface(0, router)
        p = Packet(1, 3, TrafficClass.CACHE_REQUEST, 0)
        (flit,) = p.flits()
        with pytest.raises(RuntimeError):
            ni.eject(flit, now=0)
