"""Tests of XY routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import Mesh
from repro.noc.routing import Port, next_tile, route_path, xy_route


class TestPort:
    def test_opposites(self):
        assert Port.EAST.opposite == Port.WEST
        assert Port.NORTH.opposite == Port.SOUTH
        assert Port.LOCAL.opposite == Port.LOCAL


class TestXYRoute:
    def test_local_at_destination(self):
        mesh = Mesh.square(4)
        assert xy_route(mesh, 5, 5) == Port.LOCAL

    def test_x_resolved_first(self):
        mesh = Mesh.square(4)
        # from (0,0) to (3,3): go EAST until column matches.
        assert xy_route(mesh, 0, 15) == Port.EAST
        # same column, below: SOUTH.
        assert xy_route(mesh, 3, 15) == Port.SOUTH

    def test_all_directions(self):
        mesh = Mesh.square(3)
        centre = mesh.tile(1, 1)
        assert xy_route(mesh, centre, mesh.tile(1, 2)) == Port.EAST
        assert xy_route(mesh, centre, mesh.tile(1, 0)) == Port.WEST
        assert xy_route(mesh, centre, mesh.tile(0, 1)) == Port.NORTH
        assert xy_route(mesh, centre, mesh.tile(2, 1)) == Port.SOUTH


class TestNextTile:
    def test_moves(self):
        mesh = Mesh.square(3)
        assert next_tile(mesh, 4, Port.EAST) == 5
        assert next_tile(mesh, 4, Port.WEST) == 3
        assert next_tile(mesh, 4, Port.NORTH) == 1
        assert next_tile(mesh, 4, Port.SOUTH) == 7

    def test_off_mesh_rejected(self):
        mesh = Mesh.square(3)
        with pytest.raises(ValueError):
            next_tile(mesh, 0, Port.NORTH)

    def test_local_rejected(self):
        mesh = Mesh.square(3)
        with pytest.raises(ValueError):
            next_tile(mesh, 0, Port.LOCAL)


class TestRoutePath:
    def test_path_endpoints(self):
        mesh = Mesh.square(4)
        path = route_path(mesh, 0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_path_length_is_minimal(self):
        mesh = Mesh.square(4)
        path = route_path(mesh, 0, 15)
        assert len(path) - 1 == mesh.hops(0, 15)

    def test_self_path(self):
        mesh = Mesh.square(4)
        assert route_path(mesh, 3, 3) == [3]

    @given(
        rows=st.integers(2, 6),
        cols=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_xy_property_no_x_after_y(self, rows, cols, seed):
        """XY routing never turns back into the X dimension after moving in
        Y — the invariant that makes it deadlock-free on a mesh."""
        import numpy as np

        mesh = Mesh(rows, cols)
        rng = np.random.default_rng(seed)
        src, dst = rng.integers(mesh.n_tiles, size=2)
        path = route_path(mesh, int(src), int(dst))
        moved_y = False
        for a, b in zip(path, path[1:]):
            ra, ca = mesh.coords(a)
            rb, cb = mesh.coords(b)
            if ca != cb:  # X move
                assert not moved_y, "X move after Y move violates DOR"
            else:
                moved_y = True
        # Path is always minimal.
        assert len(path) - 1 == mesh.hops(int(src), int(dst))
