"""Tests of per-protocol-class VC partitioning (Table 2: 3 VCs/class)."""

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import Packet, TrafficClass
from repro.noc.router import Router, RouterConfig
from repro.noc.routing import Port, xy_route


class TestConfig:
    def test_vc_range_single_partition(self):
        cfg = RouterConfig(vcs_per_port=3, vc_classes=1)
        assert cfg.vc_range(0) == (0, 3)
        assert cfg.vc_range(3) == (0, 3)

    def test_vc_range_partitioned(self):
        cfg = RouterConfig(vcs_per_port=4, vc_classes=4)
        assert cfg.vc_range(int(TrafficClass.CACHE_REQUEST)) == (0, 1)
        assert cfg.vc_range(int(TrafficClass.CACHE_REPLY)) == (1, 2)
        assert cfg.vc_range(int(TrafficClass.MEM_REQUEST)) == (2, 3)
        assert cfg.vc_range(int(TrafficClass.MEM_REPLY)) == (3, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(vcs_per_port=3, vc_classes=2)

    def test_invalid_class_count(self):
        with pytest.raises(ValueError):
            RouterConfig(vc_classes=0)


class TestPartitionedNetwork:
    def make_net(self):
        config = NetworkConfig(
            router=RouterConfig(vcs_per_port=8, vc_classes=4, buffer_depth=4)
        )
        return Network(Mesh.square(4), config)

    def test_mixed_classes_deliver(self):
        net = self.make_net()
        rng = np.random.default_rng(0)
        packets = []
        for _ in range(120):
            src, dst = rng.integers(16, size=2)
            if src == dst:
                continue
            cls = TrafficClass(int(rng.integers(4)))
            p = Packet(int(src), int(dst), cls, net.now)
            packets.append(p)
            net.submit(p)
            net.step()
        net.drain()
        net.assert_conserved()
        assert all(p.ejected_at is not None for p in packets)

    def test_classes_use_disjoint_local_vcs(self):
        """Injection must open VCs only inside the packet's partition."""
        net = self.make_net()
        router = net.routers[0]
        # Two packets of different classes from tile 0, injected same cycle.
        net.submit(Packet(0, 5, TrafficClass.CACHE_REQUEST, net.now))
        net.submit(Packet(0, 5, TrafficClass.MEM_REPLY, net.now))
        net.step()
        occupied = [
            vc.index
            for vc in router.inputs[Port.LOCAL]
            if vc.occupancy > 0 or vc.state != "idle"
        ]
        cfg = net.config.router
        req_range = range(*cfg.vc_range(int(TrafficClass.CACHE_REQUEST)))
        reply_range = range(*cfg.vc_range(int(TrafficClass.MEM_REPLY)))
        assert any(v in req_range for v in occupied)
        # the MEM_REPLY packet either waits (one inject/cycle) or sits in
        # its own partition; it must never occupy the request partition.
        for v in occupied:
            assert v in req_range or v in reply_range

    def test_downstream_allocation_respects_partition(self):
        """Force a head flit through VA and check the granted output VC."""
        mesh = Mesh.square(2)
        cfg = RouterConfig(vcs_per_port=4, vc_classes=4)
        router = Router(0, cfg, lambda t, d: xy_route(mesh, t, d))
        p = Packet(0, 1, TrafficClass.MEM_REQUEST, 0)
        (flit,) = p.flits()
        router.receive_flit(Port.LOCAL, 2, flit, now=0)
        sent = []
        router.step(3, lambda port, vc, f: sent.append((port, vc, f)), lambda *_: None)
        assert len(sent) == 1
        _, out_vc, _ = sent[0]
        lo, hi = cfg.vc_range(int(TrafficClass.MEM_REQUEST))
        assert lo <= out_vc < hi

    def test_partition_starvation_isolated(self):
        """Saturating one class's partition must not block another class."""
        net = self.make_net()
        # Flood cache requests 0 -> 1 and send one memory request after.
        for _ in range(30):
            net.submit(Packet(0, 1, TrafficClass.CACHE_REPLY, net.now))
        probe = Packet(0, 1, TrafficClass.MEM_REQUEST, net.now)
        net.submit(probe)
        net.drain()
        assert probe.ejected_at is not None
