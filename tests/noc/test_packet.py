"""Tests of packet/flit segmentation and latency accounting."""

import pytest

from repro.noc.packet import (
    FLIT_KIND_BODY,
    FLIT_KIND_HEAD,
    FLIT_KIND_TAIL,
    Packet,
    TrafficClass,
)


class TestTrafficClass:
    def test_default_lengths_match_table2(self):
        """Short 16-bit packets are single-flit; 64-B data packets are 5."""
        assert TrafficClass.CACHE_REQUEST.default_length == 1
        assert TrafficClass.MEM_REQUEST.default_length == 1
        assert TrafficClass.CACHE_REPLY.default_length == 5
        assert TrafficClass.MEM_REPLY.default_length == 5

    def test_predicates(self):
        assert TrafficClass.CACHE_REPLY.is_reply
        assert not TrafficClass.CACHE_REQUEST.is_reply
        assert TrafficClass.MEM_REQUEST.is_memory
        assert not TrafficClass.CACHE_REQUEST.is_memory


class TestPacket:
    def test_default_length_from_class(self):
        p = Packet(src=0, dst=1, traffic_class=TrafficClass.CACHE_REPLY, created_at=0)
        assert p.length == 5

    def test_explicit_length(self):
        p = Packet(0, 1, TrafficClass.CACHE_REQUEST, 0, length=3)
        assert p.length == 3

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Packet(0, 1, TrafficClass.CACHE_REQUEST, 0, length=0)

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            Packet(-1, 1, TrafficClass.CACHE_REQUEST, 0)

    def test_unique_pids(self):
        a = Packet(0, 1, TrafficClass.CACHE_REQUEST, 0)
        b = Packet(0, 1, TrafficClass.CACHE_REQUEST, 0)
        assert a.pid != b.pid

    def test_latency_requires_delivery(self):
        p = Packet(0, 1, TrafficClass.CACHE_REQUEST, 0)
        with pytest.raises(ValueError):
            _ = p.latency
        p.injected_at = 2
        p.ejected_at = 10
        assert p.latency == 10
        assert p.network_latency == 8


class TestFlitSegmentation:
    def test_multiflit_kinds(self):
        p = Packet(0, 1, TrafficClass.CACHE_REPLY, 0)
        flits = p.flits()
        assert len(flits) == 5
        assert flits[0].kind == FLIT_KIND_HEAD and flits[0].is_head
        assert all(f.kind == FLIT_KIND_BODY for f in flits[1:4])
        assert flits[4].kind == FLIT_KIND_TAIL and flits[4].is_tail

    def test_single_flit_is_head_and_tail(self):
        p = Packet(0, 1, TrafficClass.CACHE_REQUEST, 0)
        (flit,) = p.flits()
        assert flit.is_head and flit.is_tail

    def test_flit_indices(self):
        p = Packet(0, 1, TrafficClass.MEM_REPLY, 0)
        assert [f.index for f in p.flits()] == [0, 1, 2, 3, 4]

    def test_flits_reference_packet(self):
        p = Packet(3, 9, TrafficClass.CACHE_REQUEST, 0)
        (flit,) = p.flits()
        assert flit.packet is p
