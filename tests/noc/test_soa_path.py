"""Structure-of-arrays batch-path tests: stats materialization + growth.

The vector engine's batch path keeps packets as PacketTable rows and
accumulates measurement state in flat arrays, materializing the same
public ``SimulationResult``/``LatencyStats`` schema only at run end.
These tests pin the two halves of that contract directly (the golden
suite pins it end-to-end):

* ``LatencyStats.from_arrays`` is exactly an ``add()`` loop over the
  same rows — same ``_all`` order, same per-app/per-class lists, same
  ``dropped_local`` — and the materialized result exposes no new public
  schema.
* The SoA pool's growth edge cases — reallocation mid-run from a tiny
  capacity, zero-packet windows, and ragged batch drains (members
  finishing at different cycles) — all stay bit-identical to single
  fastpath runs.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.core.sss import sort_select_swap
from repro.experiments.base import standard_instance
from repro.noc.packet import Packet, PacketTable, TrafficClass
from repro.noc.simulator import NoCSimulator, SimulationResult
from repro.noc.stats import LatencyStats
from repro.noc.traffic import MappedWorkloadTraffic, UniformRandomTraffic
from repro.noc.vector_engine import VectorEngine


def _signature(res):
    stats = res.stats
    return (
        sorted(Counter(stats._all).items()),
        sorted(stats.apl_by_app().items()),
        res.counts.flit_router_traversals,
        res.counts.flit_link_traversals,
        res.counts.buffer_writes,
        res.counts.cycles,
        res.power.total,
        res.packets_offered,
        res.packets_delivered,
    )


def _random_rows(rng, n, n_tiles=16, with_locals=True):
    srcs = rng.integers(n_tiles, size=n)
    dsts = rng.integers(n_tiles, size=n)
    if with_locals:  # force a few src == dst rows so the filter is exercised
        dsts[:: max(1, n // 5)] = srcs[:: max(1, n // 5)]
    apps = rng.integers(4, size=n)
    classes = rng.choice([t.value for t in TrafficClass], size=n)
    created = rng.integers(1_000, size=n)
    latencies = rng.integers(1, 400, size=n)
    return srcs, dsts, apps, classes, created, latencies


@pytest.mark.parametrize("include_local", [True, False])
def test_from_arrays_matches_add_loop(include_local):
    rng = np.random.default_rng(42)
    srcs, dsts, apps, classes, created, latencies = _random_rows(rng, 200)

    by_add = LatencyStats(include_local=include_local)
    for i in range(srcs.size):
        by_add.add(
            Packet(
                src=int(srcs[i]),
                dst=int(dsts[i]),
                traffic_class=TrafficClass(int(classes[i])),
                created_at=int(created[i]),
                app=int(apps[i]),
                injected_at=int(created[i]),
                ejected_at=int(created[i] + latencies[i]),
            )
        )
    bulk = LatencyStats.from_arrays(
        latencies=latencies,
        apps=apps,
        classes=classes,
        srcs=srcs,
        dsts=dsts,
        include_local=include_local,
    )
    assert bulk._all == by_add._all  # identical order, not just multiset
    assert dict(bulk._by_app) == dict(by_add._by_app)
    assert dict(bulk._by_class) == dict(by_add._by_class)
    assert bulk.dropped_local == by_add.dropped_local
    assert bulk.apl_by_app() == by_add.apl_by_app()


def test_from_arrays_empty():
    stats = LatencyStats.from_arrays(
        latencies=np.array([], dtype=np.int64),
        apps=np.array([], dtype=np.int64),
        classes=np.array([], dtype=np.int64),
    )
    assert stats.n_packets == 0
    assert stats.dropped_local == 0


def _c1_scenario():
    inst = standard_instance("C1")
    mapping = sort_select_swap(inst).mapping

    def make(seed=13, cycles_per_unit=1000.0):
        return MappedWorkloadTraffic(
            inst,
            mapping,
            cycles_per_unit=cycles_per_unit,
            generate_replies=True,
            seed=seed,
        )

    return inst.mesh, make


def test_materialized_result_uses_same_public_schema():
    """The SoA path returns a stock SimulationResult — no new fields, and
    every shared field agrees with the fastpath run bit-for-bit."""
    mesh, make = _c1_scenario()
    fast = NoCSimulator(mesh, make(), engine="fastpath").run(warmup=100, measure=400)
    vec = VectorEngine(mesh, [make()]).run(warmup=100, measure=400)[0]
    assert type(vec) is SimulationResult
    fields = {f.name for f in dataclasses.fields(SimulationResult)}
    assert fields == {f.name for f in dataclasses.fields(type(fast))}
    assert _signature(vec) == _signature(fast)
    for name in ("cycles", "packets_offered", "packets_delivered", "packets_lost"):
        assert getattr(vec, name) == getattr(fast, name), name


# ---------------------------------------------------------------------------
# PacketTable growth and pool edge cases
# ---------------------------------------------------------------------------


def test_packet_table_grows_geometrically():
    pt = PacketTable(1)
    for i in range(100):
        pt.src.append(i)
        pt.dst.append(i + 1)
        pt.tclass.append(0)
        pt.length.append(1)
        pt.created.append(i)
        pt.app.append(0)
        pt.inj.append(-1)
        pt.ej.append(-1)
        pt.flush()  # realloc forced repeatedly from capacity 1
        assert pt.dst_a[i] == i + 1
    assert pt.dst_a.size >= 100
    assert pt.column("dst").tolist() == list(range(1, 101))


def test_packet_table_rejects_bad_capacity():
    with pytest.raises(ValueError, match="capacity"):
        PacketTable(0)


def test_tiny_table_capacity_reallocates_mid_run():
    """A 2-row initial pool forces repeated geometric reallocation while
    flits are in flight; results must not move at all."""
    mesh, make = _c1_scenario()
    fast = NoCSimulator(mesh, make(), engine="fastpath").run(warmup=200, measure=800)
    vec = VectorEngine(mesh, [make()], table_capacity=2).run(warmup=200, measure=800)[0]
    assert _signature(vec) == _signature(fast)


def test_zero_packet_windows():
    """A silent traffic source exercises every empty-cycle branch: no
    emits, no injections, no busy channels, empty materialization."""
    mesh = Mesh.square(4)

    def silent():
        return UniformRandomTraffic(mesh.n_tiles, 0.0, seed=3)

    res = VectorEngine(mesh, [silent()]).run(warmup=100, measure=500)[0]
    assert res.packets_offered == 0
    assert res.packets_delivered == 0
    assert res.stats.n_packets == 0
    assert res.counts.flit_router_traversals == 0
    fast = NoCSimulator(mesh, silent(), engine="fastpath").run(warmup=100, measure=500)
    assert _signature(res) == _signature(fast)


def test_zero_packet_member_in_active_batch():
    """One silent member must not perturb the others (and vice versa)."""
    mesh = Mesh.square(4)

    def silent():
        return UniformRandomTraffic(mesh.n_tiles, 0.0, seed=3)

    def noisy():
        return UniformRandomTraffic(mesh.n_tiles, 0.08, length=3, seed=7)

    batch = VectorEngine(mesh, [noisy(), silent(), noisy()]).run(
        warmup=200, measure=1000
    )
    fast_noisy = NoCSimulator(mesh, noisy(), engine="fastpath").run(
        warmup=200, measure=1000
    )
    assert _signature(batch[0]) == _signature(fast_noisy)
    assert _signature(batch[2]) == _signature(fast_noisy)
    assert batch[1].packets_offered == 0
    assert batch[1].stats.n_packets == 0


def test_ragged_drain_batch_members_finish_at_different_cycles():
    """Members with very different loads (cycles_per_unit 500 vs 4000)
    drain at different cycles; each must equal its own single run."""
    mesh, make = _c1_scenario()
    cpus = (500.0, 1000.0, 4000.0)
    batch = VectorEngine(mesh, [make(13, c) for c in cpus]).run(
        warmup=200, measure=800
    )
    for cpu, res in zip(cpus, batch):
        single = NoCSimulator(mesh, make(13, cpu), engine="fastpath").run(
            warmup=200, measure=800
        )
        assert _signature(res) == _signature(single), f"cycles_per_unit={cpu}"
