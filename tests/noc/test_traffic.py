"""Tests of the traffic generators."""

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import Mapping, OBMInstance
from repro.core.workload import Application, Workload
from repro.noc.packet import TrafficClass
from repro.noc.traffic import (
    MappedWorkloadTraffic,
    NearestMCTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
)


class TestUniformRandom:
    def test_rate_statistics(self):
        gen = UniformRandomTraffic(n_tiles=16, injection_rate=0.25, seed=0)
        count = sum(len(gen.packets_for_cycle(t)) for t in range(2000))
        expected = 16 * 0.25 * 2000
        assert abs(count - expected) / expected < 0.05

    def test_no_self_traffic(self):
        gen = UniformRandomTraffic(n_tiles=8, injection_rate=1.0, seed=1)
        for t in range(50):
            for p in gen.packets_for_cycle(t):
                assert p.src != p.dst

    def test_destination_uniform_over_others(self):
        gen = UniformRandomTraffic(n_tiles=4, injection_rate=1.0, seed=2)
        counts = np.zeros(4)
        for t in range(3000):
            for p in gen.packets_for_cycle(t):
                if p.src == 0:
                    counts[p.dst] += 1
        assert counts[0] == 0
        assert counts[1:].min() > 0.25 * counts[1:].max()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(n_tiles=4, injection_rate=1.5)

    def test_created_at_stamped(self):
        gen = UniformRandomTraffic(n_tiles=4, injection_rate=1.0, seed=0)
        for p in gen.packets_for_cycle(17):
            assert p.created_at == 17


class TestTranspose:
    def test_destinations_are_transposed(self):
        gen = TransposeTraffic(n_tiles=16, injection_rate=1.0, seed=0, side=4)
        for p in gen.packets_for_cycle(0):
            r, c = divmod(p.src, 4)
            assert p.dst == c * 4 + r

    def test_requires_square(self):
        with pytest.raises(ValueError):
            TransposeTraffic(n_tiles=12, injection_rate=0.1, side=3)


class TestNearestMC:
    def test_targets_are_controllers(self):
        model = MeshLatencyModel(Mesh.square(4))
        gen = NearestMCTraffic(n_tiles=16, injection_rate=1.0, seed=0, model=model)
        for p in gen.packets_for_cycle(0):
            assert p.dst in model.mc_tiles
            assert p.dst == model.nearest_mc(p.src)

    def test_requires_model(self):
        with pytest.raises(ValueError):
            NearestMCTraffic(n_tiles=16, injection_rate=0.1)


@pytest.fixture
def mapped_setup():
    model = MeshLatencyModel(Mesh.square(4))
    apps = (
        Application("a", np.full(8, 20.0), np.full(8, 5.0)),
        Application("b", np.full(8, 60.0), np.full(8, 10.0)),
    )
    inst = OBMInstance(model, Workload(apps))
    mapping = Mapping(np.arange(16))
    return inst, mapping


class TestMappedWorkloadTraffic:
    def test_rates_respected(self, mapped_setup):
        inst, mapping = mapped_setup
        gen = MappedWorkloadTraffic(inst, mapping, cycles_per_unit=1000, seed=0)
        cache = mem = 0
        cycles = 4000
        for t in range(cycles):
            for p in gen.packets_for_cycle(t):
                if p.traffic_class == TrafficClass.CACHE_REQUEST:
                    cache += 1
                else:
                    mem += 1
        expected_cache = inst.workload.cache_rates.sum() / 1000 * cycles
        expected_mem = inst.workload.mem_rates.sum() / 1000 * cycles
        assert abs(cache - expected_cache) / expected_cache < 0.1
        assert abs(mem - expected_mem) / expected_mem < 0.2

    def test_sources_follow_mapping(self, mapped_setup):
        inst, _ = mapped_setup
        perm = np.roll(np.arange(16), 3)
        gen = MappedWorkloadTraffic(inst, Mapping(perm), seed=1)
        for t in range(200):
            for p in gen.packets_for_cycle(t):
                assert p.src == perm[p.thread]

    def test_memory_goes_to_nearest_mc(self, mapped_setup):
        inst, mapping = mapped_setup
        gen = MappedWorkloadTraffic(inst, mapping, seed=2)
        seen_mem = False
        for t in range(2000):
            for p in gen.packets_for_cycle(t):
                if p.traffic_class == TrafficClass.MEM_REQUEST:
                    seen_mem = True
                    assert p.dst == inst.model.nearest_mc(p.src)
        assert seen_mem

    def test_app_tagging(self, mapped_setup):
        inst, mapping = mapped_setup
        gen = MappedWorkloadTraffic(inst, mapping, seed=3)
        for t in range(200):
            for p in gen.packets_for_cycle(t):
                assert p.app == inst.workload.app_of_thread[p.thread]

    def test_replies_generated(self, mapped_setup):
        inst, mapping = mapped_setup
        gen = MappedWorkloadTraffic(
            inst, mapping, generate_replies=True, l2_latency=6, seed=4
        )
        classes = set()
        for t in range(3000):
            for p in gen.packets_for_cycle(t):
                classes.add(p.traffic_class)
        assert TrafficClass.CACHE_REPLY in classes

    def test_reply_reverses_direction(self, mapped_setup):
        inst, mapping = mapped_setup
        gen = MappedWorkloadTraffic(inst, mapping, generate_replies=True, seed=5)
        requests = {}
        for t in range(2000):
            for p in gen.packets_for_cycle(t):
                if not p.traffic_class.is_reply:
                    requests.setdefault((p.thread, p.dst, p.src), 0)
                else:
                    # some matching request (same thread, mirrored endpoints)
                    assert (p.thread, p.src, p.dst) in requests

    def test_saturation_rejected(self, mapped_setup):
        inst, mapping = mapped_setup
        with pytest.raises(ValueError):
            MappedWorkloadTraffic(inst, mapping, cycles_per_unit=10)

    def test_invalid_cycles_per_unit(self, mapped_setup):
        inst, mapping = mapped_setup
        with pytest.raises(ValueError):
            MappedWorkloadTraffic(inst, mapping, cycles_per_unit=0)
