"""Direct tests of NetworkTelemetry reset/diff semantics and
TelemetrySnapshot's utilisation views."""

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.noc.network import Network
from repro.noc.packet import Packet, TrafficClass
from repro.noc.routing import Port
from repro.noc.telemetry import NetworkTelemetry, TelemetrySnapshot


def run_traffic(net: Network, n: int, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(n):
        src, dst = rng.integers(net.mesh.n_tiles, size=2)
        net.submit(
            Packet(
                src=int(src),
                dst=int(dst),
                traffic_class=TrafficClass.CACHE_REQUEST,
                created_at=net.now,
            )
        )
    net.drain()


class TestSnapshotViews:
    def test_link_utilisation_zero_cycles(self):
        """A snapshot spanning zero cycles reports 0.0 everywhere, not NaN."""
        snap = TelemetrySnapshot(
            router_flits=np.zeros(4, dtype=np.int64),
            buffer_writes=np.zeros(4, dtype=np.int64),
            link_flits={(0, Port.EAST): 7, (1, Port.WEST): 3},
            cycles=0,
        )
        util = snap.link_utilisation()
        assert util == {(0, Port.EAST): 0.0, (1, Port.WEST): 0.0}
        assert snap.hottest_links() == [((0, Port.EAST), 0.0), ((1, Port.WEST), 0.0)]

    def test_link_utilisation_is_flits_per_cycle(self):
        snap = TelemetrySnapshot(
            router_flits=np.zeros(4, dtype=np.int64),
            buffer_writes=np.zeros(4, dtype=np.int64),
            link_flits={(0, Port.EAST): 50, (1, Port.WEST): 25, (2, Port.NORTH): 0},
            cycles=100,
        )
        util = snap.link_utilisation()
        assert util[(0, Port.EAST)] == pytest.approx(0.5)
        assert util[(1, Port.WEST)] == pytest.approx(0.25)
        assert util[(2, Port.NORTH)] == 0.0

    def test_hottest_links_orders_and_truncates(self):
        snap = TelemetrySnapshot(
            router_flits=np.zeros(4, dtype=np.int64),
            buffer_writes=np.zeros(4, dtype=np.int64),
            link_flits={(0, Port.EAST): 10, (1, Port.WEST): 30, (2, Port.SOUTH): 20},
            cycles=10,
        )
        top2 = snap.hottest_links(2)
        assert [k for k, _ in top2] == [(1, Port.WEST), (2, Port.SOUTH)]
        assert [u for _, u in top2] == [pytest.approx(3.0), pytest.approx(2.0)]

    def test_total_flit_hops(self):
        snap = TelemetrySnapshot(
            router_flits=np.zeros(4, dtype=np.int64),
            buffer_writes=np.zeros(4, dtype=np.int64),
            link_flits={(0, Port.EAST): 10, (1, Port.WEST): 30},
            cycles=10,
        )
        assert snap.total_flit_hops == 40


class TestResetDiff:
    def test_snapshot_counts_only_since_baseline(self):
        """Telemetry created mid-run excludes activity before creation."""
        net = Network(Mesh.square(4))
        run_traffic(net, 50, seed=1)
        telemetry = NetworkTelemetry(net)
        snap = telemetry.snapshot()
        assert snap.cycles == 0
        assert int(snap.router_flits.sum()) == 0
        assert snap.total_flit_hops == 0

        run_traffic(net, 50, seed=2)
        snap = telemetry.snapshot()
        assert snap.cycles > 0
        assert int(snap.router_flits.sum()) > 0
        assert snap.total_flit_hops > 0

    def test_reset_rebaselines(self):
        net = Network(Mesh.square(4))
        telemetry = NetworkTelemetry(net)
        run_traffic(net, 50, seed=3)
        first = telemetry.snapshot()
        telemetry.reset()
        zero = telemetry.snapshot()
        assert zero.cycles == 0
        assert int(zero.router_flits.sum()) == 0
        assert zero.total_flit_hops == 0
        assert first.total_flit_hops > 0

    def test_successive_windows_sum_to_total(self):
        net = Network(Mesh.square(4))
        total = NetworkTelemetry(net)
        windowed = NetworkTelemetry(net)
        run_traffic(net, 40, seed=4)
        w1 = windowed.snapshot()
        windowed.reset()
        run_traffic(net, 40, seed=5)
        w2 = windowed.snapshot()
        overall = total.snapshot()
        assert w1.total_flit_hops + w2.total_flit_hops == overall.total_flit_hops
        assert w1.cycles + w2.cycles == overall.cycles
        assert int((w1.router_flits + w2.router_flits - overall.router_flits).sum()) == 0

    def test_snapshot_matches_conservation_identity(self):
        """Link hops == switch traversals minus ejections (per network docs)."""
        net = Network(Mesh.square(4))
        telemetry = NetworkTelemetry(net)
        run_traffic(net, 100, seed=6)
        snap = telemetry.snapshot()
        assert snap.total_flit_hops == int(snap.router_flits.sum()) - net.flits_ejected


class TestMandatoryLinkCounter:
    def test_missing_flits_carried_raises(self):
        """A link class without the counter fails loudly, not with zeros."""

        class BadLink:
            pass

        net = Network(Mesh.square(4))
        key = next(iter(net.links))
        original = net.links[key]
        net.links[key] = BadLink()
        try:
            with pytest.raises(TypeError, match="flits_carried"):
                NetworkTelemetry(net)
        finally:
            net.links[key] = original
