"""Compiled-kernel backend tests: selection, fallback, and exactness.

numba is an *optional* dependency, so these tests must be meaningful on
machines both with and without it:

* without numba, requesting the JIT backend must degrade to the
  pure-NumPy dense kernels with a logged, result-reported reason (never
  an exception);
* ``REPRO_JIT=interp`` runs the kernel uncompiled (plain Python), which
  works everywhere and pins the kernel's bit-identity against the fast
  path — the same validation CI's numba leg runs compiled;
* with numba, the compiled kernel must produce the identical results
  (the whole golden suite doubles as that check under ``REPRO_JIT=1``).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.sss import sort_select_swap
from repro.experiments.base import standard_instance
from repro.noc import jit_kernels
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic
from repro.noc.vector_engine import VectorEngine


def _scenario():
    inst = standard_instance("C1")
    mapping = sort_select_swap(inst).mapping

    def make(seed=13):
        return MappedWorkloadTraffic(
            inst, mapping, cycles_per_unit=1000.0, generate_replies=True, seed=seed
        )

    return inst.mesh, make


def _signature(res):
    return (
        sorted(Counter(res.stats._all).items()),
        sorted(res.stats.apl_by_app().items()),
        res.counts.flit_router_traversals,
        res.power.total,
        res.packets_offered,
        res.packets_delivered,
    )


def test_load_kernel_interp_returns_uncompiled(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "interp")
    kernel, reason = jit_kernels.load_kernel()
    assert kernel is jit_kernels.step_routers  # the plain Python function
    assert reason is None


def test_unavailable_reason_mentions_numba():
    if jit_kernels.HAVE_NUMBA:
        assert jit_kernels.UNAVAILABLE_REASON is None
    else:
        assert "numba" in jit_kernels.UNAVAILABLE_REASON


@pytest.mark.skipif(jit_kernels.HAVE_NUMBA, reason="numba installed: no fallback")
def test_jit_request_without_numba_logs_and_reports_fallback(caplog, monkeypatch):
    monkeypatch.delenv("REPRO_JIT", raising=False)
    mesh, make = _scenario()
    with caplog.at_level("WARNING", logger="repro.noc"):
        eng = VectorEngine(mesh, [make()], jit=True)
    assert eng._jit_kernel is None
    assert "numba" in eng.jit_fallback
    assert any("falling back" in r.message for r in caplog.records)
    res = eng.run(warmup=100, measure=400)[0]
    # The fallback still computes the exact result, on the NumPy path.
    assert res.engine == "vector"
    assert "numba" in res.engine_fallback
    fast = NoCSimulator(mesh, make(), engine="fastpath").run(warmup=100, measure=400)
    assert _signature(res) == _signature(fast)


def test_scalar_mode_refuses_kernel(monkeypatch, caplog):
    """The kernel only drives the dense path; scalar mode reports why."""
    monkeypatch.setenv("REPRO_JIT", "interp")
    mesh, make = _scenario()
    with caplog.at_level("WARNING", logger="repro.noc"):
        eng = VectorEngine(mesh, [make()], mode="scalar", jit=True)
    assert eng._jit_kernel is None
    assert "scalar" in eng.jit_fallback


def test_interp_kernel_bit_identical_to_fastpath(monkeypatch):
    """Golden smoke for the kernel logic itself, no numba required: the
    interpreted sweep must reproduce the fast path exactly, single and
    batched (the full golden suite runs under REPRO_JIT=interp in CI)."""
    monkeypatch.setenv("REPRO_JIT", "interp")
    mesh, make = _scenario()
    fast = NoCSimulator(mesh, make(), engine="fastpath").run(warmup=200, measure=600)
    eng = VectorEngine(mesh, [make(), make(14)])
    assert eng._jit_kernel is not None
    batch = eng.run(warmup=200, measure=600)
    assert batch[0].engine == "vector-jit"
    assert batch[0].engine_fallback is None
    assert _signature(batch[0]) == _signature(fast)


def test_vector_jit_engine_through_simulator(monkeypatch):
    """engine='vector-jit' must run everywhere: compiled with numba,
    pure-NumPy (with a reported reason) without."""
    monkeypatch.delenv("REPRO_JIT", raising=False)
    mesh, make = _scenario()
    sim = NoCSimulator(mesh, make(), engine="vector-jit")
    res = sim.run(warmup=100, measure=400)
    fast = NoCSimulator(mesh, make(), engine="fastpath").run(warmup=100, measure=400)
    assert _signature(res) == _signature(fast)
    if jit_kernels.HAVE_NUMBA:
        assert res.engine == "vector-jit"
        assert res.engine_fallback is None
    else:
        assert res.engine == "vector"
        assert "numba" in res.engine_fallback
