"""Edge cases of network configuration: link latency, buffer pressure."""

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.noc.network import Network, NetworkConfig
from repro.noc.packet import Packet, TrafficClass
from repro.noc.router import RouterConfig


class TestLinkLatency:
    def test_two_cycle_links_change_slope(self):
        config = NetworkConfig(link_latency=2)
        net = Network(Mesh.square(4), config)
        p = Packet(0, 3, TrafficClass.CACHE_REQUEST, net.now)
        net.submit(p)
        net.drain()
        # per-hop = pipeline(3) + link(2) = 5; plus source pipeline 3.
        assert p.latency == 3 * 5 + 3

    def test_invalid_link_latency(self):
        with pytest.raises(ValueError):
            NetworkConfig(link_latency=0)


class TestBufferPressure:
    def test_single_flit_buffers_still_deliver(self):
        """Minimum buffering forces per-hop stalls but must stay correct."""
        config = NetworkConfig(router=RouterConfig(buffer_depth=1))
        net = Network(Mesh.square(3), config)
        packets = []
        rng = np.random.default_rng(0)
        for _ in range(40):
            src, dst = rng.integers(9, size=2)
            if src == dst:
                continue
            p = Packet(int(src), int(dst), TrafficClass.CACHE_REPLY, net.now)
            packets.append(p)
            net.submit(p)
            net.step()
        net.drain(max_cycles=100_000)
        net.assert_conserved()
        assert all(p.ejected_at is not None for p in packets)

    def test_single_vc_network(self):
        config = NetworkConfig(router=RouterConfig(vcs_per_port=1))
        net = Network(Mesh.square(3), config)
        for i in range(10):
            net.submit(Packet(0, 8, TrafficClass.CACHE_REPLY, net.now))
            net.step()
        net.drain()
        net.assert_conserved()
        assert len(net.delivered) == 10


class TestIdleEfficiency:
    def test_idle_network_steps_cheaply(self):
        """No-traffic steps must not accumulate state or activity."""
        net = Network(Mesh.square(8))
        net.run(1_000)
        assert net.flits_injected == 0
        assert net.in_flight_flits == 0
        assert not net._active

    def test_activity_set_shrinks_after_drain(self):
        net = Network(Mesh.square(4))
        net.submit(Packet(0, 15, TrafficClass.CACHE_REPLY, net.now))
        net.drain()
        assert not net._active
