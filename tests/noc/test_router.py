"""Direct unit tests of the router microarchitecture."""

import pytest

from repro.core.latency import Mesh
from repro.noc.packet import Packet, TrafficClass
from repro.noc.router import Router, RouterConfig
from repro.noc.routing import Port, xy_route


def make_router(tile=0, mesh_side=2, **config_kwargs):
    mesh = Mesh.square(mesh_side)
    return Router(
        tile, RouterConfig(**config_kwargs), lambda t, d: xy_route(mesh, t, d)
    )


def single_flit(src, dst, cls=TrafficClass.CACHE_REQUEST):
    (flit,) = Packet(src, dst, cls, 0).flits()
    return flit


class TestPipelineTiming:
    def test_flit_waits_pipeline_depth(self):
        router = make_router(pipeline_depth=3)
        flit = single_flit(0, 1)
        router.receive_flit(Port.LOCAL, 0, flit, now=10)
        sent = []
        # Before cycle 13 the flit is not eligible for switch traversal.
        for cycle in (10, 11, 12):
            router.step(cycle, lambda *a: sent.append(a), lambda *a: None)
            assert not sent
        router.step(13, lambda *a: sent.append(a), lambda *a: None)
        assert len(sent) == 1
        out_port, out_vc, out_flit = sent[0]
        assert out_port == Port.EAST
        assert out_flit is flit


class TestCredits:
    def test_send_consumes_credit(self):
        router = make_router()
        flit = single_flit(0, 1)
        router.receive_flit(Port.LOCAL, 0, flit, now=0)
        before = router.credits[Port.EAST][:]
        router.step(5, lambda *a: None, lambda *a: None)
        after = router.credits[Port.EAST]
        assert sum(before) - sum(after) == 1

    def test_no_credit_blocks_send(self):
        router = make_router()
        # Drain all EAST credits.
        for vc in range(router.config.vcs_per_port):
            router.credits[Port.EAST][vc] = 0
        flit = single_flit(0, 1)
        router.receive_flit(Port.LOCAL, 0, flit, now=0)
        sent = []
        router.step(10, lambda *a: sent.append(a), lambda *a: None)
        assert not sent
        # Returning one credit unblocks it.
        router.credit_return(Port.EAST, 0)
        router.step(11, lambda *a: sent.append(a), lambda *a: None)
        assert len(sent) == 1

    def test_credit_overflow_detected(self):
        router = make_router()
        with pytest.raises(RuntimeError):
            router.credit_return(Port.EAST, 0)

    def test_buffer_overflow_detected(self):
        router = make_router(buffer_depth=1)
        router.receive_flit(Port.LOCAL, 0, single_flit(0, 1), now=0)
        with pytest.raises(RuntimeError):
            router.receive_flit(Port.LOCAL, 0, single_flit(0, 1), now=0)

    def test_upstream_credit_returned_on_forward(self):
        """Forwarding a flit that arrived over a link frees that buffer."""
        router = make_router(tile=1, mesh_side=2)
        flit = single_flit(0, 3)  # passes through tile 1 heading SOUTH
        router.receive_flit(Port.WEST, 0, flit, now=0)
        credits = []
        router.step(5, lambda *a: None, lambda p, v: credits.append((p, v)))
        assert credits == [(Port.WEST, 0)]


class TestWormholeInvariants:
    def test_body_first_is_error(self):
        router = make_router()
        packet = Packet(0, 1, TrafficClass.CACHE_REPLY, 0)
        flits = packet.flits()
        router.receive_flit(Port.LOCAL, 0, flits[1], now=0)  # body without head
        with pytest.raises(RuntimeError):
            router.step(5, lambda *a: None, lambda *a: None)

    def test_output_vc_held_until_tail(self):
        router = make_router()
        packet = Packet(0, 1, TrafficClass.CACHE_REPLY, 0)
        flits = packet.flits()
        for i, flit in enumerate(flits):
            router.receive_flit(Port.LOCAL, 0, flit, now=i)
        sent = []
        cycle = 3
        while len(sent) < 5 and cycle < 30:
            router.step(cycle, lambda *a: sent.append(a), lambda *a: None)
            if len(sent) < 5:
                # the held VC must stay owned mid-packet
                owners = router.out_vc_owner[Port.EAST]
                assert (Port.LOCAL, 0) in owners
            cycle += 1
        assert len(sent) == 5
        # after the tail leaves the VC is released
        assert all(o != (Port.LOCAL, 0) for o in router.out_vc_owner[Port.EAST])
        # all five flits used the same output VC, in order
        vcs = {vc for _, vc, _ in sent}
        assert len(vcs) == 1
        assert [f.index for _, _, f in sent] == [0, 1, 2, 3, 4]

    def test_two_packets_interleave_on_different_vcs(self):
        router = make_router()
        p1 = Packet(0, 1, TrafficClass.CACHE_REPLY, 0)
        p2 = Packet(0, 1, TrafficClass.CACHE_REPLY, 0)
        for i, flit in enumerate(p1.flits()):
            router.receive_flit(Port.LOCAL, 0, flit, now=i)
        for i, flit in enumerate(p2.flits()):
            router.receive_flit(Port.LOCAL, 1, flit, now=i)
        sent = []
        for cycle in range(3, 40):
            router.step(cycle, lambda *a: sent.append(a), lambda *a: None)
            if len(sent) == 10:
                break
        assert len(sent) == 10
        # One flit per output port per cycle: both packets complete, and
        # each packet's flits stayed on its own output VC.
        by_vc = {}
        for _, vc, flit in sent:
            by_vc.setdefault(vc, []).append(flit.packet.pid)
        for pids in by_vc.values():
            assert len(set(pids)) == 1

    def test_occupancy_tracks_buffered_flits(self):
        router = make_router()
        assert router.occupancy == 0
        router.receive_flit(Port.LOCAL, 0, single_flit(0, 1), now=0)
        assert router.occupancy == 1
        router.step(5, lambda *a: None, lambda *a: None)
        assert router.occupancy == 0
