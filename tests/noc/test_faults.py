"""Fault injection: schedules, degraded routing, loss recovery.

Every scenario is fully deterministic — fault windows are explicit and
stochastic drops replay from a seed — so the assertions pin exact
counter values wherever the behaviour is scenario-defined and fall back
to structural properties (conservation, delivery accounting) where the
precise numbers are configuration details.
"""

from __future__ import annotations

import pytest

from repro.core.latency import Mesh
from repro.noc import (
    FaultConfig,
    FaultSchedule,
    LinkDownWindow,
    Network,
    NetworkTelemetry,
    Packet,
    Port,
    RouterStallWindow,
    TrafficClass,
    UniformRandomTraffic,
    detour_port,
)


def _packet(src: int, dst: int, length: int = 1, created_at: int = 0) -> Packet:
    return Packet(
        src=src,
        dst=dst,
        traffic_class=TrafficClass.CACHE_REQUEST,
        created_at=created_at,
        length=length,
    )


def _drive(net: Network, packets, cycles_between: int = 0) -> None:
    for p in packets:
        net.submit(p)
        for _ in range(cycles_between):
            net.step()
    net.drain()
    net.assert_conserved()


class TestScheduleConstruction:
    def test_local_port_is_not_a_link(self):
        with pytest.raises(ValueError):
            LinkDownWindow(0, Port.LOCAL, 0, 10)

    def test_windows_must_be_ordered(self):
        with pytest.raises(ValueError):
            LinkDownWindow(0, Port.EAST, 10, 10)
        with pytest.raises(ValueError):
            RouterStallWindow(0, 5, 2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)
        with pytest.raises(ValueError):
            FaultConfig(nack_delay=0)

    def test_trivial_schedule(self):
        assert FaultSchedule().is_trivial
        assert not FaultSchedule(
            link_windows=(LinkDownWindow(0, Port.EAST, 0, 1),)
        ).is_trivial
        assert not FaultSchedule().with_config(drop_rate=0.1).is_trivial

    def test_random_schedule_is_seed_deterministic(self):
        mesh = Mesh.square(4)
        a = FaultSchedule.random(mesh, seed=7, n_link_faults=3, n_stalls=2)
        b = FaultSchedule.random(mesh, seed=7, n_link_faults=3, n_stalls=2)
        assert a == b
        assert a != FaultSchedule.random(mesh, seed=8, n_link_faults=3, n_stalls=2)
        for w in a.link_windows:
            assert 0 <= w.tile < mesh.n_tiles


class TestDetourPort:
    def test_prefers_productive_port(self):
        mesh = Mesh.square(4)
        # 5 -> 7 is due east; with EAST dead the only distance-preserving
        # moves are the perpendicular sidesteps.
        port = detour_port(
            mesh, 5, 7, lambda t, p: p != Port.EAST, Port.EAST
        )
        assert port in (Port.NORTH, Port.SOUTH)

    def test_prefers_perpendicular_over_backtrack(self):
        mesh = Mesh.square(4)
        # All ports live except EAST: WEST (backtrack) must rank below the
        # sidesteps even though port iteration order lists it earlier.
        port = detour_port(mesh, 5, 6, lambda t, p: p != Port.EAST, Port.EAST)
        assert port != Port.WEST

    def test_cut_off_router_returns_none(self):
        mesh = Mesh.square(4)
        assert detour_port(mesh, 5, 7, lambda t, p: False, Port.EAST) is None


class TestLinkOutage:
    def test_preroute_outage_takes_a_detour(self):
        mesh = Mesh.square(4)
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(5, Port.EAST, 0, 10_000),)
        )
        net = Network(mesh, faults=schedule)
        _drive(net, [_packet(5, 7)])
        assert len(net.delivered) == 1
        stats = net.fault_stats
        assert stats.reroutes >= 1
        assert stats.link_down_events == 1
        assert stats.packets_dropped == 0  # rerouted, never lost a flit
        assert net.delivered[0].retries == 0

    def test_detour_costs_extra_hops(self):
        mesh = Mesh.square(4)
        clean = Network(mesh)
        _drive(clean, [_packet(5, 7)])
        faulted = Network(
            mesh,
            faults=FaultSchedule(
                link_windows=(LinkDownWindow(5, Port.EAST, 0, 10_000),)
            ),
        )
        _drive(faulted, [_packet(5, 7)])
        assert faulted.delivered[0].latency > clean.delivered[0].latency

    def test_midflight_outage_triggers_nack_retry(self):
        mesh = Mesh.square(4)
        # A 5-flit packet 0 -> 3 streams east for many cycles; killing
        # (0, EAST) at cycle 6 catches it mid-wormhole.
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(0, Port.EAST, 6, 10_000),)
        )
        net = Network(mesh, faults=schedule)
        _drive(net, [_packet(0, 3, length=5)])
        stats = net.fault_stats
        assert stats.packets_dropped >= 1
        assert stats.flits_dropped >= 1
        assert stats.packets_retried >= 1
        assert len(net.delivered) == 1
        packet = net.delivered[0]
        assert packet.retries >= 1
        # Recovery cost (NACK delay + re-injection + detour) is part of
        # the measured latency because created_at is preserved.
        assert packet.latency > 20

    def test_link_up_restores_the_direct_route(self):
        mesh = Mesh.square(4)
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(5, Port.EAST, 0, 50),)
        )
        net = Network(mesh, faults=schedule)
        net.submit(_packet(5, 7))
        net.drain()
        net.run(60)  # ride past the link-up event at cycle 50
        late = _packet(5, 7, created_at=net.now)
        net.submit(late)
        net.drain()
        net.assert_conserved()
        assert net.fault_stats.link_up_events == 1
        # Second packet sees a healed network: minimal latency again.
        clean = Network(mesh)
        _drive(clean, [_packet(5, 7)])
        assert late.latency == clean.delivered[0].latency


class TestStochasticDrops:
    def test_drops_recover_and_conserve(self):
        mesh = Mesh.square(4)
        schedule = FaultSchedule(config=FaultConfig(drop_rate=0.01, seed=3))
        net = Network(mesh, faults=schedule, invariants=True)
        traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, seed=11)
        offered = 0
        for _ in range(500):
            for p in traffic.packets_for_cycle(net.now):
                net.submit(p)
                offered += 1
            net.step()
        net.drain()
        net.assert_conserved()
        stats = net.fault_stats
        assert stats.packets_dropped > 0  # the fault actually fired
        assert len(net.delivered) + len(net.lost_packets) == offered
        assert stats.packets_lost == len(net.lost_packets)

    def test_same_seed_same_outcome(self):
        mesh = Mesh.square(4)

        def run() -> tuple:
            net = Network(
                mesh, faults=FaultSchedule(config=FaultConfig(drop_rate=0.02, seed=5))
            )
            traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, seed=1)
            for _ in range(300):
                for p in traffic.packets_for_cycle(net.now):
                    net.submit(p)
                net.step()
            net.drain()
            return (
                net.now,
                net.flits_dropped,
                tuple(sorted(p.latency for p in net.delivered)),
            )

        assert run() == run()

    def test_retry_exhaustion_loses_the_packet(self):
        mesh = Mesh.square(4)
        # Sever every route out of tile 0: both outgoing links die before
        # anything moves, so each injection attempt drops at the link and
        # the packet burns through its whole retry budget.
        schedule = FaultSchedule(
            link_windows=(
                LinkDownWindow(0, Port.EAST, 0, 10_000),
                LinkDownWindow(0, Port.SOUTH, 0, 10_000),
            ),
            config=FaultConfig(max_retries=2),
        )
        net = Network(mesh, faults=schedule)
        net.submit(_packet(0, 3))
        net.drain()
        net.assert_conserved()
        assert len(net.delivered) == 0
        assert len(net.lost_packets) == 1
        stats = net.fault_stats
        assert stats.packets_retried == 2
        assert stats.packets_lost == 1
        assert net.lost_packets[0].retries == 2


class TestRouterStalls:
    def test_stall_adds_latency_without_loss(self):
        mesh = Mesh.square(4)
        clean = Network(mesh)
        _drive(clean, [_packet(0, 3)])
        base = clean.delivered[0].latency

        stalled = Network(
            mesh,
            faults=FaultSchedule(stall_windows=(RouterStallWindow(1, 2, 35),)),
        )
        _drive(stalled, [_packet(0, 3)])
        assert stalled.fault_stats.stall_windows == 1
        assert stalled.fault_stats.flits_dropped == 0
        assert stalled.delivered[0].latency > base


class TestSurfacing:
    def test_telemetry_reports_dropped_flits(self):
        mesh = Mesh.square(4)
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(0, Port.EAST, 6, 10_000),)
        )
        net = Network(mesh, faults=schedule)
        telemetry = NetworkTelemetry(net)
        _drive(net, [_packet(0, 3, length=5)])
        snap = telemetry.snapshot()
        assert snap.flits_dropped == net.flits_dropped > 0

    def test_fault_stats_round_trip(self):
        mesh = Mesh.square(4)
        net = Network(
            mesh,
            faults=FaultSchedule(
                link_windows=(LinkDownWindow(5, Port.EAST, 0, 10_000),)
            ),
        )
        _drive(net, [_packet(5, 7)])
        d = net.fault_stats.as_dict()
        assert d["reroutes"] >= 1
        assert net.fault_stats.any_faults
        assert "reroutes" in net.fault_stats.report()

    def test_faultless_network_exposes_no_stats(self):
        net = Network(Mesh.square(4))
        assert net.fault_stats is None
        assert net.lost_packets == []

    def test_simulator_surfaces_fault_and_invariant_counters(self):
        from repro.noc import NoCSimulator

        mesh = Mesh.square(4)
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(5, Port.EAST, 120, 400),)
        )
        traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, seed=4)
        sim = NoCSimulator(mesh, traffic, faults=schedule, invariants=True)
        result = sim.run(warmup=100, measure=400)
        assert result.fault_stats is not None
        assert result.fault_stats.link_down_events == 1
        assert result.invariant_checks > 0
        # Every measured packet is drained to an outcome: ejected or lost.
        assert result.packets_delivered + result.packets_lost == result.packets_offered
        assert 0.0 <= result.delivery_ratio <= 1.0

    def test_simulator_defaults_stay_fault_free(self):
        from repro.noc import NoCSimulator

        mesh = Mesh.square(4)
        traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, seed=4)
        result = NoCSimulator(mesh, traffic).run(warmup=50, measure=200)
        assert result.fault_stats is None
        assert result.packets_lost == 0
        assert result.invariant_checks == 0
