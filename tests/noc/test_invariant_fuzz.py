"""Differential fuzzing: random configs + full invariant checking.

Each fuzz case draws a random mesh/router/routing/traffic configuration,
runs it with every invariant enabled at ``check_interval=1`` (so any
bookkeeping drift is caught on the exact cycle it appears), and then
cross-checks the engine's aggregate counters against an independently
accumulated :class:`~repro.noc.stats.LatencyStats` — the engine and the
statistics layer must agree packet-for-packet.

The tier-1 run covers a handful of configs; the ``slow`` variant sweeps
``REPRO_FUZZ_CONFIGS`` (default 50) and is exercised by the nightly fuzz
CI job.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.latency import Mesh
from repro.noc import (
    FaultSchedule,
    InvariantConfig,
    LatencyStats,
    Network,
    NetworkConfig,
    RouterConfig,
    TransposeTraffic,
    UniformRandomTraffic,
)
from repro.utils.rng import stable_seed


def _random_case(rng: np.random.Generator, *, faults: bool):
    """One random (network, traffic, schedule, horizon) configuration."""
    side = int(rng.integers(3, 6))
    mesh = Mesh.square(side)
    vc_classes = int(rng.choice([1, 2]))
    vcs = vc_classes * int(rng.integers(1, 4))
    config = NetworkConfig(
        router=RouterConfig(
            vcs_per_port=vcs,
            vc_classes=vc_classes,
            buffer_depth=int(rng.integers(2, 7)),
            pipeline_depth=int(rng.integers(1, 4)),
        ),
        link_latency=int(rng.integers(1, 3)),
        routing=str(rng.choice(["xy", "yx", "west_first"])),
    )
    rate = float(rng.uniform(0.01, 0.08))
    length = int(rng.choice([1, 5]))
    seed = int(rng.integers(2**31))
    if rng.random() < 0.5:
        traffic = UniformRandomTraffic(mesh.n_tiles, rate, length=length, seed=seed)
    else:
        traffic = TransposeTraffic(
            mesh.n_tiles, rate, length=length, seed=seed, side=side
        )
    horizon = int(rng.integers(200, 600))
    schedule = None
    if faults:
        schedule = FaultSchedule.random(
            mesh,
            seed=seed,
            n_link_faults=int(rng.integers(1, 4)),
            n_stalls=int(rng.integers(0, 3)),
            horizon=horizon,
            max_window=horizon // 2,
            drop_rate=float(rng.choice([0.0, 0.005])),
        )
    return mesh, config, traffic, schedule, horizon


def _run_case(case_seed: int, *, faults: bool) -> None:
    rng = np.random.default_rng(case_seed)
    mesh, config, traffic, schedule, horizon = _random_case(rng, faults=faults)
    net = Network(
        mesh,
        config,
        faults=schedule,
        invariants=InvariantConfig(check_interval=1),
    )
    offered = 0
    for _ in range(horizon):
        for p in traffic.packets_for_cycle(net.now):
            net.submit(p)
            offered += 1
        net.step()  # any invariant violation raises right here
    net.drain()
    net.assert_conserved()

    # Differential accounting: engine counters vs the stats layer.
    stats = LatencyStats()
    stats.add_all(net.delivered)
    assert stats.n_packets == len(net.delivered)
    assert len(net.delivered) + len(net.lost_packets) == offered
    network_flits = sum(
        p.length for p in net.delivered if p.src != p.dst
    )
    if schedule is None:
        assert net.flits_dropped == 0
        assert net.flits_ejected == net.flits_injected == network_flits
    else:
        # Retried packets eject once per successful attempt's worth of
        # flits; drops account for the rest.
        assert net.flits_injected == net.flits_ejected + net.flits_dropped
    if stats.n_packets:
        assert stats.overall().count == stats.n_packets
        assert min(p.latency for p in net.delivered) >= 0


@pytest.mark.parametrize("case", range(4))
def test_fuzz_clean_network(case: int):
    _run_case(stable_seed("fuzz-clean", str(case)), faults=False)


@pytest.mark.parametrize("case", range(4))
def test_fuzz_faulted_network(case: int):
    _run_case(stable_seed("fuzz-faults", str(case)), faults=True)


@pytest.mark.slow
def test_fuzz_sweep():
    """The long sweep: half clean, half faulted (nightly CI budget)."""
    n = int(os.environ.get("REPRO_FUZZ_CONFIGS", "50"))
    for case in range(n):
        _run_case(stable_seed("fuzz-sweep", str(case)), faults=case % 2 == 1)
