"""Tests of the simulation driver and the sim-vs-analytic-model validation.

The closing test of the reproduction's measurement loop: the cycle-level
simulator must agree with the analytic ``TC``/``TM`` arrays on *who has
higher latency* and, up to the model's convention offset, on the values.
"""

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import Mapping, OBMInstance
from repro.core.workload import Application, Workload
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic, UniformRandomTraffic


class TestSimulatorHarness:
    def test_runs_and_conserves(self):
        sim = NoCSimulator(
            Mesh.square(4), UniformRandomTraffic(n_tiles=16, injection_rate=0.05, seed=0)
        )
        res = sim.run(warmup=200, measure=1000)
        assert res.stats.n_packets > 0
        assert res.delivery_ratio == pytest.approx(1.0)
        assert res.power.dynamic > 0

    def test_invalid_windows(self):
        sim = NoCSimulator(
            Mesh.square(4), UniformRandomTraffic(n_tiles=16, injection_rate=0.05, seed=0)
        )
        with pytest.raises(ValueError):
            sim.run(warmup=-1, measure=10)
        with pytest.raises(ValueError):
            sim.run(warmup=0, measure=0)

    def test_warmup_packets_excluded(self):
        sim = NoCSimulator(
            Mesh.square(4), UniformRandomTraffic(n_tiles=16, injection_rate=0.2, seed=1)
        )
        res = sim.run(warmup=300, measure=300)
        # every measured packet was created inside the measurement window
        assert res.packets_delivered <= res.packets_offered + 20

    def test_activity_counts_positive(self):
        sim = NoCSimulator(
            Mesh.square(4), UniformRandomTraffic(n_tiles=16, injection_rate=0.1, seed=2)
        )
        res = sim.run(warmup=100, measure=500)
        assert res.counts.flit_router_traversals > res.counts.flit_link_traversals
        assert res.counts.buffer_writes > 0


class TestResultEdgeCases:
    def test_delivery_ratio_zero_offered_is_one(self):
        """No offered packets is a perfect (vacuous) delivery, not 0/0."""
        from repro.noc.simulator import SimulationResult
        from repro.noc.stats import LatencyStats

        res = SimulationResult(
            stats=LatencyStats(),
            power=None,
            counts=None,
            cycles=100,
            packets_offered=0,
            packets_delivered=0,
        )
        assert res.delivery_ratio == 1.0

    def test_delivery_ratio_partial(self):
        from repro.noc.simulator import SimulationResult
        from repro.noc.stats import LatencyStats

        res = SimulationResult(
            stats=LatencyStats(),
            power=None,
            counts=None,
            cycles=100,
            packets_offered=10,
            packets_delivered=7,
        )
        assert res.delivery_ratio == pytest.approx(0.7)

    @pytest.mark.parametrize("engine", ["fastpath", "vector"])
    def test_zero_rate_window_offers_nothing(self, engine):
        """A window with no traffic at all: zero offered packets, a clean
        drain, and delivery_ratio defined as 1.0."""
        sim = NoCSimulator(
            Mesh.square(4),
            UniformRandomTraffic(n_tiles=16, injection_rate=0.0, seed=0),
            engine=engine,
        )
        res = sim.run(warmup=50, measure=200)
        assert res.packets_offered == 0
        assert res.packets_delivered == 0
        assert res.delivery_ratio == 1.0
        assert res.stats.n_packets == 0
        assert res.counts.flit_router_traversals == 0

    @pytest.mark.parametrize("engine", ["fastpath", "vector"])
    def test_zero_warmup_is_valid(self, engine):
        sim = NoCSimulator(
            Mesh.square(4),
            UniformRandomTraffic(n_tiles=16, injection_rate=0.05, seed=3),
            engine=engine,
        )
        res = sim.run(warmup=0, measure=400)
        assert res.packets_offered > 0
        assert res.packets_delivered == res.packets_offered

    def test_fastpath_result_reports_engine(self):
        sim = NoCSimulator(
            Mesh.square(4), UniformRandomTraffic(n_tiles=16, injection_rate=0.05, seed=0)
        )
        res = sim.run(warmup=50, measure=200)
        assert res.engine == "fastpath"
        assert res.engine_fallback is None


@pytest.mark.slow
class TestSimVsAnalyticModel:
    """Measured mean latency per source tile must track TC(k) (up to the
    constant destination-router offset the analytic model folds away)."""

    def setup_instance(self):
        model = MeshLatencyModel(Mesh.square(4))
        apps = (
            Application("a", np.full(8, 12.0), np.full(8, 2.0)),
            Application("b", np.full(8, 12.0), np.full(8, 2.0)),
        )
        return OBMInstance(model, Workload(apps))

    def test_measured_cache_latency_tracks_tc(self):
        inst = self.setup_instance()
        mapping = Mapping(np.arange(16))
        traffic = MappedWorkloadTraffic(inst, mapping, cycles_per_unit=1000, seed=0)
        sim = NoCSimulator(inst.mesh, traffic)
        res = sim.run(warmup=1000, measure=12_000)

        from collections import defaultdict

        by_src = defaultdict(list)
        for latency, src in (
            (p.latency, p.src)
            for p in sim.network.delivered
            if p.created_at >= 1000 and not p.traffic_class.is_memory
        ):
            by_src[src].append(latency)
        measured = np.array([np.mean(by_src[k]) for k in range(16)])
        tc = inst.tc  # analytic, with a different constant offset convention

        # Pearson correlation across source tiles should be strong.
        corr = np.corrcoef(measured, tc)[0, 1]
        assert corr > 0.9
        # Slope of measured vs analytic ~ 1 (same per-hop cost).
        slope = np.polyfit(tc, measured, 1)[0]
        assert 0.7 < slope < 1.4

    def test_low_load_queuing_is_small(self):
        """Paper: td_q observed at 0-1 cycles; at these loads the measured
        latency should exceed the zero-load bound by only a little."""
        inst = self.setup_instance()
        mapping = Mapping(np.arange(16))
        traffic = MappedWorkloadTraffic(inst, mapping, cycles_per_unit=1000, seed=1)
        sim = NoCSimulator(inst.mesh, traffic)
        res = sim.run(warmup=500, measure=6000)
        mesh = inst.mesh
        excess = []
        for p in sim.network.delivered:
            if p.created_at < 500 or p.src == p.dst:
                continue
            hops = mesh.hops(p.src, p.dst)
            zero_load = 4 * hops + 3 + (p.length - 1)
            excess.append(p.latency - zero_load)
        assert np.mean(excess) < 2.0  # average queuing under two cycles
