"""Tests of simulator-driven latency-model calibration."""

import pytest

from repro.calibration import calibrated_params, measure_queuing_delay
from repro.core.latency import LatencyParams, Mesh
from repro.noc.network import NetworkConfig
from repro.noc.router import RouterConfig


class TestMeasureQueuingDelay:
    def test_low_load_queuing_in_paper_range(self):
        """The paper observes td_q of 0-1 cycles at its operating load."""
        result = measure_queuing_delay(Mesh.square(4), injection_rate=0.02,
                                       cycles=6_000, warmup=500)
        assert -0.2 < result.td_q < 1.0
        assert result.per_hop == pytest.approx(4.0, abs=1.0)
        assert result.n_packets > 100

    def test_higher_load_increases_td_q(self):
        low = measure_queuing_delay(Mesh.square(4), injection_rate=0.01,
                                    cycles=5_000, warmup=500, seed=1)
        high = measure_queuing_delay(Mesh.square(4), injection_rate=0.12,
                                     cycles=5_000, warmup=500, seed=1)
        assert high.td_q > low.td_q

    def test_pipeline_depth_reflected_in_slope(self):
        config = NetworkConfig(router=RouterConfig(pipeline_depth=2))
        result = measure_queuing_delay(
            Mesh.square(4), injection_rate=0.02, cycles=5_000, warmup=500,
            network_config=config,
        )
        assert result.per_hop == pytest.approx(3.0, abs=0.8)

    def test_insufficient_samples_rejected(self):
        with pytest.raises(ValueError):
            measure_queuing_delay(Mesh.square(4), injection_rate=0.001,
                                  cycles=200, warmup=0)


class TestCalibratedParams:
    def test_returns_params_with_measured_td_q(self):
        params = calibrated_params(Mesh.square(4), injection_rate=0.02,
                                   cycles=5_000, warmup=500)
        assert isinstance(params, LatencyParams)
        assert 0 <= params.td_q < 1.5
        # Other fields untouched from the default base.
        assert params.td_r == LatencyParams().td_r

    def test_custom_base_preserved(self):
        base = LatencyParams(td_s=3.0)
        params = calibrated_params(Mesh.square(4), injection_rate=0.02,
                                   cycles=5_000, warmup=500, base=base)
        assert params.td_s == 3.0
