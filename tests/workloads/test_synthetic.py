"""Tests of the calibrated rate generator and its closed-form burst math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.synthetic import (
    BurstProfile,
    RateMatrix,
    RateTargets,
    _solve_spike_levels,
    generate_rate_matrix,
    moment_match,
)


class TestRateTargets:
    def test_cv(self):
        t = RateTargets(mean=2.0, std=5.0)
        assert t.cv == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateTargets(mean=0, std=1)
        with pytest.raises(ValueError):
            RateTargets(mean=1, std=-1)


class TestSpikeLevels:
    @given(
        p=st.floats(0.002, 0.4),
        q=st.floats(1.0, 200.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_closed_form_satisfies_both_moments(self, p, q):
        if p * q >= 0.999:
            return  # infeasible region, rejected by the solver
        alpha, beta = _solve_spike_levels(p, q)
        assert alpha >= 0 and 0 <= beta <= 1
        assert p * alpha + (1 - p) * beta == pytest.approx(1.0)
        assert p * alpha**2 + (1 - p) * beta**2 == pytest.approx(q, rel=1e-9)

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            _solve_spike_levels(p=0.5, q=10.0)
        with pytest.raises(ValueError):
            _solve_spike_levels(p=0.1, q=0.5)
        with pytest.raises(ValueError):
            _solve_spike_levels(p=0.0, q=2.0)


class TestGenerateRateMatrix:
    def test_exact_moment_matching(self):
        targets = RateTargets(mean=7.008, std=88.3)
        m = generate_rate_matrix(4, 16, 256, targets, seed=0)
        assert m.pooled_mean == pytest.approx(targets.mean, rel=1e-9)
        assert m.pooled_std == pytest.approx(targets.std, rel=1e-9)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_moment_matching_any_seed(self, seed):
        targets = RateTargets(mean=1.9, std=17.5)
        m = generate_rate_matrix(4, 8, 256, targets, seed=seed)
        assert m.pooled_mean == pytest.approx(targets.mean, rel=1e-9)
        assert m.pooled_std == pytest.approx(targets.std, rel=1e-6)

    def test_low_cv_target_flat_series(self):
        targets = RateTargets(mean=5.0, std=0.0)
        m = generate_rate_matrix(2, 4, 16, targets, seed=1)
        assert m.pooled_mean == pytest.approx(5.0)
        # flat in time: every thread's row is constant
        assert np.allclose(m.samples.std(axis=1), m.samples.std(axis=1)[0])

    def test_thread_means_positive_and_moderate_spread(self):
        targets = RateTargets(mean=7.0, std=88.0)
        m = generate_rate_matrix(4, 16, 256, targets, seed=2)
        assert np.all(m.thread_means > 0)
        # The across-thread CV stays well below the pooled CV: the bursts
        # live in the time dimension.
        cv_threads = m.thread_means.std() / m.thread_means.mean()
        assert cv_threads < 2.0

    def test_fixed_thread_scales(self):
        scales = np.linspace(1, 8, 8)
        targets = RateTargets(mean=4.0, std=20.0)
        m = generate_rate_matrix(2, 4, 128, targets, seed=3, thread_scales=scales)
        # Means preserved up to the common normalisation factor.
        expected = scales * targets.mean / scales.mean()
        assert np.allclose(m.thread_means, expected)

    def test_deterministic(self):
        targets = RateTargets(mean=2.0, std=15.0)
        a = generate_rate_matrix(2, 8, 128, targets, seed=7)
        b = generate_rate_matrix(2, 8, 128, targets, seed=7)
        assert np.array_equal(a.samples, b.samples)

    def test_unreachable_cv_rejected(self):
        targets = RateTargets(mean=1.0, std=50.0)  # CV 50 -> q ~ 2500
        with pytest.raises(ValueError):
            generate_rate_matrix(1, 2, 8, targets, seed=0)

    def test_invalid_dimensions(self):
        t = RateTargets(1.0, 1.0)
        with pytest.raises(ValueError):
            generate_rate_matrix(0, 4, 64, t)
        with pytest.raises(ValueError):
            generate_rate_matrix(1, 4, 1, t)

    def test_invalid_thread_scales(self):
        t = RateTargets(1.0, 1.0)
        with pytest.raises(ValueError):
            generate_rate_matrix(1, 4, 64, t, thread_scales=np.ones(3))
        with pytest.raises(ValueError):
            generate_rate_matrix(1, 4, 64, t, thread_scales=np.zeros(4))

    def test_app_of_thread_layout(self):
        m = generate_rate_matrix(3, 4, 64, RateTargets(1.0, 2.0), seed=0)
        assert list(m.app_of_thread) == [0] * 4 + [1] * 4 + [2] * 4


class TestRateMatrix:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateMatrix(np.zeros((2, 2)) - 1, np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            RateMatrix(np.zeros((2, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            RateMatrix(np.zeros(4), np.zeros(4, dtype=int))


class TestMomentMatch:
    def test_hits_targets(self):
        rng = np.random.default_rng(0)
        x = rng.lognormal(0, 1, 5000)
        y = moment_match(x, RateTargets(mean=3.0, std=9.0))
        assert y.mean() == pytest.approx(3.0, rel=1e-6)
        assert y.std() == pytest.approx(9.0, rel=1e-3)

    def test_preserves_order(self):
        rng = np.random.default_rng(1)
        x = rng.lognormal(0, 1, 100)
        y = moment_match(x, RateTargets(mean=2.0, std=8.0))
        assert np.array_equal(np.argsort(x), np.argsort(y))

    def test_degenerate_falls_back_to_scaling(self):
        y = moment_match(np.full(10, 4.0), RateTargets(mean=2.0, std=1.0))
        assert np.allclose(y, 2.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            moment_match(np.zeros(5), RateTargets(1.0, 1.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            moment_match(np.array([-1.0, 1.0]), RateTargets(1.0, 1.0))


class TestBurstProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstProfile(app_spread=-1)
        with pytest.raises(ValueError):
            BurstProfile(max_spikes=0)
