"""Tests of the C1-C8 PARSEC-calibrated configurations (paper Table 3)."""

import numpy as np
import pytest

from repro.workloads.parsec import (
    CONFIG_NAMES,
    PARSEC_CONFIGS,
    measured_table3_row,
    parsec_config,
    parsec_trace_matrices,
)


class TestConfigTable:
    def test_eight_configs(self):
        assert CONFIG_NAMES == ("C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8")

    def test_paper_values_stored(self):
        spec = PARSEC_CONFIGS["C1"]
        assert spec.cache.mean == 7.008
        assert spec.cache.std == 88.3
        assert spec.mem.mean == 0.899
        assert spec.mem.std == 9.84

    def test_cache_to_mem_ratio_near_paper(self):
        """Paper: cache rate on average 6.78x the memory rate."""
        ratios = [s.cache_to_mem_ratio for s in PARSEC_CONFIGS.values()]
        assert 4 < np.mean(ratios) < 9

    def test_four_benchmarks_each(self):
        for spec in PARSEC_CONFIGS.values():
            assert len(spec.benchmarks) == 4


class TestTable3Reproduction:
    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_measured_stats_match_paper(self, name):
        """The headline property: pooled mean/std equal Table 3 exactly."""
        row = measured_table3_row(name)
        assert row["cache_mean"] == pytest.approx(row["paper_cache_mean"], rel=1e-6)
        assert row["cache_std"] == pytest.approx(row["paper_cache_std"], rel=1e-6)
        assert row["mem_mean"] == pytest.approx(row["paper_mem_mean"], rel=1e-6)
        assert row["mem_std"] == pytest.approx(row["paper_mem_std"], rel=1e-6)


class TestWorkloadConstruction:
    def test_default_shape(self):
        wl = parsec_config("C1")
        assert wl.n_apps == 4
        assert wl.n_threads == 64
        assert all(a.n_threads == 16 for a in wl.applications)

    def test_sorted_by_traffic_default(self):
        wl = parsec_config("C1")
        totals = [a.total_rate for a in wl.applications]
        assert totals == sorted(totals)

    def test_unsorted_option(self):
        wl = parsec_config("C1", sort_by_traffic=False)
        assert {a.name for a in wl.applications} == set(
            PARSEC_CONFIGS["C1"].benchmarks
        )

    def test_deterministic_default_seed(self):
        a = parsec_config("C3")
        b = parsec_config("C3")
        assert np.array_equal(a.cache_rates, b.cache_rates)
        assert np.array_equal(a.mem_rates, b.mem_rates)

    def test_different_configs_differ(self):
        a = parsec_config("C1")
        b = parsec_config("C2")
        assert not np.array_equal(a.cache_rates, b.cache_rates)

    def test_explicit_seed_changes_draw(self):
        a = parsec_config("C1")
        b = parsec_config("C1", seed=123)
        assert not np.array_equal(a.cache_rates, b.cache_rates)

    def test_custom_thread_count(self):
        wl = parsec_config("C2", threads_per_app=4)
        assert wl.n_threads == 16

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            parsec_config("C9")

    def test_case_insensitive(self):
        wl = parsec_config("c1")
        assert wl.name == "C1"

    def test_memory_correlated_with_cache(self):
        """Threads with high cache rates should tend to have high memory
        rates (they are generated with coupled scales)."""
        cache, mem, _ = parsec_trace_matrices("C4")
        corr = np.corrcoef(
            np.log(cache.thread_means), np.log(mem.thread_means)
        )[0, 1]
        assert corr > 0.4

    def test_all_rates_positive(self):
        for name in CONFIG_NAMES:
            wl = parsec_config(name)
            assert np.all(wl.cache_rates > 0)
            assert np.all(wl.mem_rates > 0)

    def test_apps_have_distinct_intensities(self):
        """Application totals must spread enough for the mapping problem to
        be interesting (the paper's apps differ several-fold)."""
        wl = parsec_config("C1")
        totals = np.array([a.total_rate for a in wl.applications])
        assert totals.max() > 1.5 * totals.min()
