"""Determinism of the parallel experiment runner.

The contract of :mod:`repro.experiments.parallel` is that ``workers=N``
is purely a wall-clock knob: every harness that accepts it must produce
byte-for-byte identical results for any worker count.  These tests pin
that contract at every integration point — the raw ``parallel_map``, the
figure harnesses, the artifact writer, and ``multi_start_sss``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.sss import multi_start_sss
from repro.core.workload import Application, Workload
from repro.experiments.artifacts import write_artifacts
from repro.experiments.figures import fig9
from repro.experiments.parallel import (
    MAX_POOL_REPLACEMENTS,
    CellFailure,
    cell_seeds,
    parallel_map,
    resolve_workers,
    supports_kwarg,
    supports_workers,
)
from repro.experiments.resilience import (
    FailureBudgetExceeded,
    RunInterrupted,
    RunLedger,
    RunReport,
    backoff_delays,
    resolve_backoff,
)


def _square(x: int) -> int:  # module-level: picklable for worker processes
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("cell three always fails")
    return x + 1


def _wedge_on_two(x: int) -> int:
    if x == 2:
        time.sleep(60)  # far beyond any test timeout; the pool is replaced
    return x * 10


def _crash_on_one(x: int) -> int:
    if x == 1:
        # Let the healthy worker drain the other cells first: a pool
        # crash marks every in-flight future broken, so dying instantly
        # races against innocent cells' results reaching the parent.
        time.sleep(0.3)
        os._exit(13)  # hard worker death -> BrokenProcessPool upstream
    return x


def _timed_square(x: int) -> int:
    from repro.utils import profiling

    with profiling.phase("cell.compute"):
        return x * x


def _small_instance() -> OBMInstance:
    rng = np.random.default_rng(7)
    model = MeshLatencyModel(Mesh.square(4))
    apps = tuple(
        Application(f"a{i}", rng.uniform(1, 5, 4), rng.uniform(0.1, 0.5, 4))
        for i in range(4)
    )
    return OBMInstance(model, Workload(apps))


class TestParallelMap:
    def test_serial_is_plain_map(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        cells = list(range(10))
        assert parallel_map(_square, cells, workers=4) == [c * c for c in cells]

    def test_parallel_matches_serial(self):
        cells = [5, 3, 8, 1]
        assert parallel_map(_square, cells, workers=2) == parallel_map(
            _square, cells, workers=1
        )

    def test_empty_and_single_cell(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [6], workers=4) == [36]


class TestFailureHandling:
    def test_exhausted_retries_raise_cell_failure(self):
        with pytest.raises(CellFailure) as excinfo:
            parallel_map(_fail_on_three, [1, 2, 3], workers=2, retries=1)
        assert excinfo.value.index == 2
        assert excinfo.value.cell == 3
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.cause, ValueError)

    def test_on_failure_none_keeps_remaining_cells(self):
        out = parallel_map(
            _fail_on_three, [1, 2, 3, 4], workers=2, on_failure="none"
        )
        assert out == [2, 3, None, 5]

    def test_serial_path_retries_transient_failures(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return x

        assert parallel_map(flaky, [7], workers=1, retries=5) == [7]
        assert calls["n"] == 3

    def test_serial_failure_semantics_match_parallel(self):
        for workers in (1, 2):
            with pytest.raises(CellFailure):
                parallel_map(_fail_on_three, [3, 3], workers=workers)
            assert parallel_map(
                _fail_on_three, [1, 3], workers=workers, on_failure="none"
            ) == [2, None]

    def test_timeout_recovers_other_cells(self):
        out = parallel_map(
            _wedge_on_two, [0, 1, 2, 3], workers=2, timeout=2, on_failure="none"
        )
        assert out == [0, 10, None, 30]

    def test_broken_pool_is_replaced(self):
        out = parallel_map(
            _crash_on_one,
            [0, 1, 2, 3],
            workers=2,
            timeout=30,
            retries=1,
            on_failure="none",
        )
        assert out[0] == 0 and out[2] == 2 and out[3] == 3
        assert out[1] is None  # crashes deterministically on every attempt

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "2")
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return x

        assert parallel_map(flaky, [1], workers=1) == [1]
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "-1")
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=2)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], timeout=0)
        with pytest.raises(ValueError):
            parallel_map(_square, [1], retries=-1)
        with pytest.raises(ValueError):
            parallel_map(_square, [1], on_failure="explode")


class TestWorkerKnobs:
    def test_resolve_workers_passthrough_and_zero(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1  # one per CPU

    def test_resolve_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1

    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_cell_seeds_stable_and_order_independent(self):
        seeds = cell_seeds("fig9", ["C1", "C2", "C3"])
        assert seeds == cell_seeds("fig9", ["C1", "C2", "C3"])
        assert len(set(seeds)) == 3
        # A cell's seed does not depend on which other cells run.
        assert cell_seeds("fig9", ["C2"])[0] == seeds[1]
        # ...but does depend on the tag.
        assert cell_seeds("fig10", ["C1"])[0] != seeds[0]

    def test_supports_workers_detection(self):
        assert supports_workers(fig9)
        assert not supports_workers(_square)
        assert not supports_workers(lambda fast=False: None)


class TestOnResult:
    def test_serial_reports_in_order(self):
        seen = []
        out = parallel_map(
            _square, [4, 2, 3], workers=1, on_result=lambda i, r: seen.append((i, r))
        )
        assert out == [16, 4, 9]
        assert seen == [(0, 16), (1, 4), (2, 9)]

    def test_parallel_reports_every_cell_in_order(self):
        seen = []
        cells = list(range(8))
        out = parallel_map(
            _square, cells, workers=4, on_result=lambda i, r: seen.append((i, r))
        )
        assert out == [c * c for c in cells]
        assert seen == [(i, c * c) for i, c in enumerate(cells)]

    def test_failed_cell_reports_none(self):
        seen = []
        out = parallel_map(
            _fail_on_three,
            [1, 3, 5],
            workers=1,
            on_failure="none",
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert out == [2, None, 6]
        assert seen == [(0, 2), (1, None), (2, 6)]


class TestWorkerProfiling:
    """Phase timings recorded inside worker processes reach the parent."""

    def _with_profiling(self):
        from repro.utils import profiling

        profiling.reset_profiling()
        profiling.enable_profiling(True)
        return profiling

    def test_worker_phases_merged_into_parent(self):
        profiling = self._with_profiling()
        try:
            out = parallel_map(_timed_square, [2, 3, 4, 5], workers=2)
            summary = profiling.profile_summary()
        finally:
            profiling.enable_profiling(False)
            profiling.reset_profiling()
        assert out == [4, 9, 16, 25]
        assert summary["cell.compute"]["calls"] == 4
        assert summary["cell.compute"]["seconds"] >= 0.0

    def test_results_identical_with_profiling_enabled(self):
        profiling = self._with_profiling()
        try:
            fanned = parallel_map(_timed_square, [1, 2, 3], workers=2)
        finally:
            profiling.enable_profiling(False)
            profiling.reset_profiling()
        assert fanned == parallel_map(_timed_square, [1, 2, 3], workers=1)

    def test_profiled_on_result_sees_unwrapped_values(self):
        profiling = self._with_profiling()
        seen = []
        try:
            parallel_map(
                _timed_square,
                [2, 3],
                workers=2,
                on_result=lambda i, r: seen.append((i, r)),
            )
        finally:
            profiling.enable_profiling(False)
            profiling.reset_profiling()
        assert seen == [(0, 4), (1, 9)]

    def test_disabled_profiler_stays_empty(self):
        from repro.utils import profiling

        profiling.reset_profiling()
        assert parallel_map(_timed_square, [2, 3], workers=2) == [4, 9]
        assert profiling.profile_summary() == {}

    def test_merge_accumulates(self):
        from repro.utils.profiling import PhaseProfiler

        parent = PhaseProfiler()
        parent.record("a", 1.0)
        parent.merge({"a": {"seconds": 2.0, "calls": 3}, "b": {"seconds": 0.5, "calls": 1}})
        summary = parent.summary()
        assert summary["a"] == {"seconds": 3.0, "calls": 4}
        assert summary["b"] == {"seconds": 0.5, "calls": 1}


def _always_fail(x: int) -> int:
    raise RuntimeError(f"cell {x} is doomed")


def _crash_unless_parent(cell):
    # (x, parent_pid): dies in any pool worker, succeeds in the parent —
    # the degraded-serial path is the only way this ever completes.
    x, parent_pid = cell
    if os.getpid() != parent_pid:
        os._exit(13)
    return x * 3


class TestBackoff:
    def test_fake_clock_records_deterministic_delays(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return x

        report = RunReport()
        out = parallel_map(
            flaky, [9], workers=1, retries=5,
            backoff=(1.0, 4.0), sleep=sleeps.append, report=report,
        )
        assert out == [9]
        # Attempt 1 waits base*jitter in [0.5, 1.0); attempt 2 doubles.
        assert len(sleeps) == 2
        assert 0.5 <= sleeps[0] < 1.0
        assert 1.0 <= sleeps[1] < 2.0
        assert report.retries == 2
        assert report.backoff_seconds == pytest.approx(sum(sleeps))
        # Seeded jitter: the same (cell, attempt) always waits the same.
        rerun: list[float] = []
        calls["n"] = 0
        parallel_map(
            flaky, [9], workers=1, retries=5, backoff=(1.0, 4.0), sleep=rerun.append
        )
        assert rerun == sleeps

    def test_delays_cap_and_disable(self):
        for attempt in range(1, 12):
            assert backoff_delays(0, attempt, (0.1, 2.0)) <= 2.0
        assert backoff_delays(0, 5, (0.0, 2.0)) == 0.0
        assert backoff_delays(3, 1, (1.0, 8.0)) != backoff_delays(4, 1, (1.0, 8.0))

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.5:8")
        assert resolve_backoff(None) == (0.5, 8.0)
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        assert resolve_backoff(None)[0] == 0.0
        sleeps: list[float] = []
        parallel_map(
            _fail_on_three, [3], workers=1, retries=2,
            on_failure="none", sleep=sleeps.append,
        )
        assert sleeps == []  # disabled: retries happen but never sleep
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "junk")
        with pytest.raises(ValueError):
            resolve_backoff(None)
        with pytest.raises(ValueError):
            resolve_backoff((2.0, 1.0))  # cap below base


class TestSupervision:
    def test_failure_budget_aborts_run(self):
        with pytest.raises(FailureBudgetExceeded) as excinfo:
            parallel_map(
                _always_fail, [1, 2, 3], workers=1, retries=2,
                on_failure="none", failure_budget=4, backoff=0,
            )
        assert excinfo.value.budget == 4
        assert excinfo.value.causes  # carries the recent causes

    def test_failure_budget_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAILURE_BUDGET", "1")
        with pytest.raises(FailureBudgetExceeded):
            parallel_map(
                _always_fail, [1, 2], workers=1, retries=3,
                on_failure="none", backoff=0,
            )

    def test_degrades_to_serial_after_pool_replacements(self):
        cells = [(i, os.getpid()) for i in range(6)]
        report = RunReport()
        out = parallel_map(
            _crash_unless_parent, cells, workers=2, timeout=30,
            retries=2 * MAX_POOL_REPLACEMENTS + 6, backoff=0, report=report,
        )
        assert out == [i * 3 for i in range(6)]
        assert report.degraded_serial
        assert report.pool_replacements > MAX_POOL_REPLACEMENTS

    def test_report_accounts_cells(self):
        report = RunReport()
        parallel_map(_square, [1, 2, 3], workers=1, report=report)
        assert report.cells_total == 3
        assert report.cells_computed == 3
        assert report.cells_resumed == 0
        assert "3/3 cells computed" in report.summary()

    def test_supports_kwarg_detection(self):
        assert supports_kwarg(fig9, "ledger")
        assert supports_kwarg(fig9, "max_cells")
        assert not supports_kwarg(_square, "ledger")
        assert not supports_kwarg(lambda **kw: None, "ledger")


class TestLedgerResume:
    def _ledger(self, tmp_path, **kw):
        kw.setdefault("experiment", "t")
        kw.setdefault("fingerprint", "abc123")
        return RunLedger(tmp_path / "t.jsonl", **kw)

    def test_second_run_resumes_without_recompute(self, tmp_path):
        with self._ledger(tmp_path) as ledger:
            first = parallel_map(
                _square, [2, 3], workers=1, ledger=ledger, cell_keys=["a", "b"]
            )
        assert first == [4, 9]
        report = RunReport()
        with self._ledger(tmp_path) as ledger:
            second = parallel_map(
                _always_fail,  # would raise if any cell actually ran
                [2, 3],
                workers=1,
                ledger=ledger,
                cell_keys=["a", "b"],
                report=report,
            )
        assert second == first
        assert report.cells_resumed == 2
        assert report.cells_computed == 0

    def test_max_cells_interrupts_and_journals(self, tmp_path):
        with self._ledger(tmp_path) as ledger:
            with pytest.raises(RunInterrupted) as excinfo:
                parallel_map(
                    _square, [1, 2, 3, 4], workers=1,
                    ledger=ledger, cell_keys=list("wxyz"), max_cells=2,
                )
        assert excinfo.value.completed == 2
        assert excinfo.value.total == 4
        with self._ledger(tmp_path) as ledger:
            assert len(ledger) == 2
            out = parallel_map(
                _square, [1, 2, 3, 4], workers=1, ledger=ledger, cell_keys=list("wxyz")
            )
        assert out == [1, 4, 9, 16]

    def test_ledger_requires_sane_keys(self, tmp_path):
        with self._ledger(tmp_path) as ledger:
            with pytest.raises(ValueError):
                parallel_map(_square, [1, 2], ledger=ledger)
            with pytest.raises(ValueError):
                parallel_map(_square, [1, 2], ledger=ledger, cell_keys=["a"])
            with pytest.raises(ValueError):
                parallel_map(_square, [1, 2], ledger=ledger, cell_keys=["a", "a"])

    def test_parallel_run_journals_like_serial(self, tmp_path):
        cells = list(range(6))
        keys = [f"k{i}" for i in cells]
        with RunLedger(tmp_path / "p.jsonl", experiment="t", fingerprint="f") as led:
            parallel_map(_square, cells, workers=3, ledger=led, cell_keys=keys)
        with RunLedger(tmp_path / "s.jsonl", experiment="t", fingerprint="f") as led:
            parallel_map(_square, cells, workers=1, ledger=led, cell_keys=keys)
        # Same entries either way (order may differ: pool completion order).
        read = lambda p: sorted((p.read_text()).splitlines()[1:])
        assert read(tmp_path / "p.jsonl") == read(tmp_path / "s.jsonl")


class TestHarnessDeterminism:
    def test_fig9_workers_identical(self):
        serial = fig9(fast=True)
        fanned = fig9(fast=True, workers=4)
        assert fanned.data == serial.data
        assert fanned.text == serial.text

    def test_artifacts_byte_identical(self, tmp_path):
        write_artifacts(tmp_path / "serial", ["fig9"], fast=True, workers=1)
        write_artifacts(tmp_path / "fanned", ["fig9"], fast=True, workers=2)
        for name in ("fig9.json", "fig9.txt", "INDEX.txt"):
            assert (tmp_path / "fanned" / name).read_bytes() == (
                tmp_path / "serial" / name
            ).read_bytes()

    def test_multi_start_sss_workers_identical(self):
        instance = _small_instance()
        serial = multi_start_sss(instance, n_starts=4, seed=3)
        fanned = multi_start_sss(instance, n_starts=4, seed=3, workers=4)
        assert np.array_equal(fanned.mapping.perm, serial.mapping.perm)
        assert fanned.max_apl == serial.max_apl
        assert fanned.evaluation.apls == pytest.approx(serial.evaluation.apls)
