"""Determinism of the parallel experiment runner.

The contract of :mod:`repro.experiments.parallel` is that ``workers=N``
is purely a wall-clock knob: every harness that accepts it must produce
byte-for-byte identical results for any worker count.  These tests pin
that contract at every integration point — the raw ``parallel_map``, the
figure harnesses, the artifact writer, and ``multi_start_sss``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.sss import multi_start_sss
from repro.core.workload import Application, Workload
from repro.experiments.artifacts import write_artifacts
from repro.experiments.figures import fig9
from repro.experiments.parallel import (
    cell_seeds,
    parallel_map,
    resolve_workers,
    supports_workers,
)


def _square(x: int) -> int:  # module-level: picklable for worker processes
    return x * x


def _small_instance() -> OBMInstance:
    rng = np.random.default_rng(7)
    model = MeshLatencyModel(Mesh.square(4))
    apps = tuple(
        Application(f"a{i}", rng.uniform(1, 5, 4), rng.uniform(0.1, 0.5, 4))
        for i in range(4)
    )
    return OBMInstance(model, Workload(apps))


class TestParallelMap:
    def test_serial_is_plain_map(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        cells = list(range(10))
        assert parallel_map(_square, cells, workers=4) == [c * c for c in cells]

    def test_parallel_matches_serial(self):
        cells = [5, 3, 8, 1]
        assert parallel_map(_square, cells, workers=2) == parallel_map(
            _square, cells, workers=1
        )

    def test_empty_and_single_cell(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [6], workers=4) == [36]


class TestWorkerKnobs:
    def test_resolve_workers_passthrough_and_zero(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1  # one per CPU

    def test_resolve_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1

    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_cell_seeds_stable_and_order_independent(self):
        seeds = cell_seeds("fig9", ["C1", "C2", "C3"])
        assert seeds == cell_seeds("fig9", ["C1", "C2", "C3"])
        assert len(set(seeds)) == 3
        # A cell's seed does not depend on which other cells run.
        assert cell_seeds("fig9", ["C2"])[0] == seeds[1]
        # ...but does depend on the tag.
        assert cell_seeds("fig10", ["C1"])[0] != seeds[0]

    def test_supports_workers_detection(self):
        assert supports_workers(fig9)
        assert not supports_workers(_square)
        assert not supports_workers(lambda fast=False: None)


class TestHarnessDeterminism:
    def test_fig9_workers_identical(self):
        serial = fig9(fast=True)
        fanned = fig9(fast=True, workers=4)
        assert fanned.data == serial.data
        assert fanned.text == serial.text

    def test_artifacts_byte_identical(self, tmp_path):
        write_artifacts(tmp_path / "serial", ["fig9"], fast=True, workers=1)
        write_artifacts(tmp_path / "fanned", ["fig9"], fast=True, workers=2)
        for name in ("fig9.json", "fig9.txt", "INDEX.txt"):
            assert (tmp_path / "fanned" / name).read_bytes() == (
                tmp_path / "serial" / name
            ).read_bytes()

    def test_multi_start_sss_workers_identical(self):
        instance = _small_instance()
        serial = multi_start_sss(instance, n_starts=4, seed=3)
        fanned = multi_start_sss(instance, n_starts=4, seed=3, workers=4)
        assert np.array_equal(fanned.mapping.perm, serial.mapping.perm)
        assert fanned.max_apl == serial.max_apl
        assert fanned.evaluation.apls == pytest.approx(serial.evaluation.apls)
