"""Determinism of the parallel experiment runner.

The contract of :mod:`repro.experiments.parallel` is that ``workers=N``
is purely a wall-clock knob: every harness that accepts it must produce
byte-for-byte identical results for any worker count.  These tests pin
that contract at every integration point — the raw ``parallel_map``, the
figure harnesses, the artifact writer, and ``multi_start_sss``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.sss import multi_start_sss
from repro.core.workload import Application, Workload
from repro.experiments.artifacts import write_artifacts
from repro.experiments.figures import fig9
from repro.experiments.parallel import (
    CellFailure,
    cell_seeds,
    parallel_map,
    resolve_workers,
    supports_workers,
)


def _square(x: int) -> int:  # module-level: picklable for worker processes
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("cell three always fails")
    return x + 1


def _wedge_on_two(x: int) -> int:
    if x == 2:
        time.sleep(60)  # far beyond any test timeout; the pool is replaced
    return x * 10


def _crash_on_one(x: int) -> int:
    if x == 1:
        os._exit(13)  # hard worker death -> BrokenProcessPool upstream
    return x


def _timed_square(x: int) -> int:
    from repro.utils import profiling

    with profiling.phase("cell.compute"):
        return x * x


def _small_instance() -> OBMInstance:
    rng = np.random.default_rng(7)
    model = MeshLatencyModel(Mesh.square(4))
    apps = tuple(
        Application(f"a{i}", rng.uniform(1, 5, 4), rng.uniform(0.1, 0.5, 4))
        for i in range(4)
    )
    return OBMInstance(model, Workload(apps))


class TestParallelMap:
    def test_serial_is_plain_map(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        cells = list(range(10))
        assert parallel_map(_square, cells, workers=4) == [c * c for c in cells]

    def test_parallel_matches_serial(self):
        cells = [5, 3, 8, 1]
        assert parallel_map(_square, cells, workers=2) == parallel_map(
            _square, cells, workers=1
        )

    def test_empty_and_single_cell(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [6], workers=4) == [36]


class TestFailureHandling:
    def test_exhausted_retries_raise_cell_failure(self):
        with pytest.raises(CellFailure) as excinfo:
            parallel_map(_fail_on_three, [1, 2, 3], workers=2, retries=1)
        assert excinfo.value.index == 2
        assert excinfo.value.cell == 3
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.cause, ValueError)

    def test_on_failure_none_keeps_remaining_cells(self):
        out = parallel_map(
            _fail_on_three, [1, 2, 3, 4], workers=2, on_failure="none"
        )
        assert out == [2, 3, None, 5]

    def test_serial_path_retries_transient_failures(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return x

        assert parallel_map(flaky, [7], workers=1, retries=5) == [7]
        assert calls["n"] == 3

    def test_serial_failure_semantics_match_parallel(self):
        for workers in (1, 2):
            with pytest.raises(CellFailure):
                parallel_map(_fail_on_three, [3, 3], workers=workers)
            assert parallel_map(
                _fail_on_three, [1, 3], workers=workers, on_failure="none"
            ) == [2, None]

    def test_timeout_recovers_other_cells(self):
        out = parallel_map(
            _wedge_on_two, [0, 1, 2, 3], workers=2, timeout=2, on_failure="none"
        )
        assert out == [0, 10, None, 30]

    def test_broken_pool_is_replaced(self):
        out = parallel_map(
            _crash_on_one,
            [0, 1, 2, 3],
            workers=2,
            timeout=30,
            retries=1,
            on_failure="none",
        )
        assert out[0] == 0 and out[2] == 2 and out[3] == 3
        assert out[1] is None  # crashes deterministically on every attempt

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "2")
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return x

        assert parallel_map(flaky, [1], workers=1) == [1]
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "-1")
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=2)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], timeout=0)
        with pytest.raises(ValueError):
            parallel_map(_square, [1], retries=-1)
        with pytest.raises(ValueError):
            parallel_map(_square, [1], on_failure="explode")


class TestWorkerKnobs:
    def test_resolve_workers_passthrough_and_zero(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1  # one per CPU

    def test_resolve_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1

    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_cell_seeds_stable_and_order_independent(self):
        seeds = cell_seeds("fig9", ["C1", "C2", "C3"])
        assert seeds == cell_seeds("fig9", ["C1", "C2", "C3"])
        assert len(set(seeds)) == 3
        # A cell's seed does not depend on which other cells run.
        assert cell_seeds("fig9", ["C2"])[0] == seeds[1]
        # ...but does depend on the tag.
        assert cell_seeds("fig10", ["C1"])[0] != seeds[0]

    def test_supports_workers_detection(self):
        assert supports_workers(fig9)
        assert not supports_workers(_square)
        assert not supports_workers(lambda fast=False: None)


class TestOnResult:
    def test_serial_reports_in_order(self):
        seen = []
        out = parallel_map(
            _square, [4, 2, 3], workers=1, on_result=lambda i, r: seen.append((i, r))
        )
        assert out == [16, 4, 9]
        assert seen == [(0, 16), (1, 4), (2, 9)]

    def test_parallel_reports_every_cell_in_order(self):
        seen = []
        cells = list(range(8))
        out = parallel_map(
            _square, cells, workers=4, on_result=lambda i, r: seen.append((i, r))
        )
        assert out == [c * c for c in cells]
        assert seen == [(i, c * c) for i, c in enumerate(cells)]

    def test_failed_cell_reports_none(self):
        seen = []
        out = parallel_map(
            _fail_on_three,
            [1, 3, 5],
            workers=1,
            on_failure="none",
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert out == [2, None, 6]
        assert seen == [(0, 2), (1, None), (2, 6)]


class TestWorkerProfiling:
    """Phase timings recorded inside worker processes reach the parent."""

    def _with_profiling(self):
        from repro.utils import profiling

        profiling.reset_profiling()
        profiling.enable_profiling(True)
        return profiling

    def test_worker_phases_merged_into_parent(self):
        profiling = self._with_profiling()
        try:
            out = parallel_map(_timed_square, [2, 3, 4, 5], workers=2)
            summary = profiling.profile_summary()
        finally:
            profiling.enable_profiling(False)
            profiling.reset_profiling()
        assert out == [4, 9, 16, 25]
        assert summary["cell.compute"]["calls"] == 4
        assert summary["cell.compute"]["seconds"] >= 0.0

    def test_results_identical_with_profiling_enabled(self):
        profiling = self._with_profiling()
        try:
            fanned = parallel_map(_timed_square, [1, 2, 3], workers=2)
        finally:
            profiling.enable_profiling(False)
            profiling.reset_profiling()
        assert fanned == parallel_map(_timed_square, [1, 2, 3], workers=1)

    def test_profiled_on_result_sees_unwrapped_values(self):
        profiling = self._with_profiling()
        seen = []
        try:
            parallel_map(
                _timed_square,
                [2, 3],
                workers=2,
                on_result=lambda i, r: seen.append((i, r)),
            )
        finally:
            profiling.enable_profiling(False)
            profiling.reset_profiling()
        assert seen == [(0, 4), (1, 9)]

    def test_disabled_profiler_stays_empty(self):
        from repro.utils import profiling

        profiling.reset_profiling()
        assert parallel_map(_timed_square, [2, 3], workers=2) == [4, 9]
        assert profiling.profile_summary() == {}

    def test_merge_accumulates(self):
        from repro.utils.profiling import PhaseProfiler

        parent = PhaseProfiler()
        parent.record("a", 1.0)
        parent.merge({"a": {"seconds": 2.0, "calls": 3}, "b": {"seconds": 0.5, "calls": 1}})
        summary = parent.summary()
        assert summary["a"] == {"seconds": 3.0, "calls": 4}
        assert summary["b"] == {"seconds": 0.5, "calls": 1}


class TestHarnessDeterminism:
    def test_fig9_workers_identical(self):
        serial = fig9(fast=True)
        fanned = fig9(fast=True, workers=4)
        assert fanned.data == serial.data
        assert fanned.text == serial.text

    def test_artifacts_byte_identical(self, tmp_path):
        write_artifacts(tmp_path / "serial", ["fig9"], fast=True, workers=1)
        write_artifacts(tmp_path / "fanned", ["fig9"], fast=True, workers=2)
        for name in ("fig9.json", "fig9.txt", "INDEX.txt"):
            assert (tmp_path / "fanned" / name).read_bytes() == (
                tmp_path / "serial" / name
            ).read_bytes()

    def test_multi_start_sss_workers_identical(self):
        instance = _small_instance()
        serial = multi_start_sss(instance, n_starts=4, seed=3)
        fanned = multi_start_sss(instance, n_starts=4, seed=3, workers=4)
        assert np.array_equal(fanned.mapping.perm, serial.mapping.perm)
        assert fanned.max_apl == serial.max_apl
        assert fanned.evaluation.apls == pytest.approx(serial.evaluation.apls)
