"""End-to-end tests: every experiment runs and its paper-shape claims hold.

These use the fast budgets; the benchmarks run paper-scale budgets.  Shape
assertions mirror DESIGN.md's per-experiment expectations.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.base import run_algorithms, standard_instance
from repro.experiments.figures import fig3, fig4, fig5, fig8, fig9, fig10
from repro.experiments.power import analytic_noc_power, fig11
from repro.experiments.runtime import fig12
from repro.experiments.tables import table1, table2, table3, table4


class TestRegistry:
    def test_every_paper_artifact_present(self):
        paper_artifacts = {
            "table1", "table2", "table3", "table4",
            "fig3", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12",
        }
        assert paper_artifacts <= set(EXPERIMENTS)
        extras = set(EXPERIMENTS) - paper_artifacts
        assert all(
            e.startswith("sensitivity") or e in ("scorecard", "measured")
            for e in extras
        )

    def test_reports_render(self):
        report = table2()
        assert "8x8 mesh" in report.text
        assert str(report).startswith("== table2")


@pytest.mark.slow
class TestTableShapes:
    def test_table1_global_exacerbates_imbalance(self):
        report = table1(fast=True)
        avg = report.data["avg"]
        assert avg["g_global"] < avg["g_random"]  # Global improves g-APL...
        assert avg["max_global"] > avg["max_random"]  # ...but raises max-APL
        assert avg["dev_global"] > 2 * avg["dev_random"]  # and blows up dev

    def test_table3_matches_paper_exactly(self):
        report = table3()
        for name in ("C1", "C5", "C8"):
            row = report.data[name]
            assert row["cache_mean"] == pytest.approx(row["paper_cache_mean"], rel=1e-6)
            assert row["cache_std"] == pytest.approx(row["paper_cache_std"], rel=1e-6)

    def test_table4_sss_most_balanced(self):
        report = table4(fast=True)
        reductions = report.data["reductions"]
        assert reductions["Global"] > 0.9  # paper: 99.65%
        for name in ("C1", "C4", "C8"):
            row = report.data[name]
            assert row["SSS"] < row["Global"]


class TestFigureShapes:
    def test_fig3_latency_gradients(self):
        report = fig3()
        tc, tm = report.data["tc"], report.data["tm"]
        assert tc[0, 0] > tc[3, 3]  # cache: corners worst
        assert tm[0, 0] < tm[3, 3]  # memory: corners best
        assert tm[0, 0] == 0.0

    def test_fig5_exact_paper_values(self):
        report = fig5()
        good, bad = report.data["good"], report.data["bad"]
        assert good.apls[0] == pytest.approx(10.3375)
        assert bad.apls[0] == pytest.approx(11.5375)
        assert good.dev_apl == pytest.approx(0.0, abs=1e-9)
        assert bad.dev_apl == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.slow
    def test_fig4_lightest_app_squeezed_out(self):
        report = fig4(fast=True)
        apls = report.data["apls"]
        active = apls[~np.isnan(apls)]
        # Under Global the app APLs are visibly imbalanced.
        assert active.max() - active.min() > 1.0

    @pytest.mark.slow
    def test_fig8_sss_balances(self):
        report = fig8(fast=True)
        sss = report.data["sss"]
        glob = report.data["global"]
        assert sss.max_apl < glob.max_apl
        assert sss.dev_apl < 0.2 * glob.dev_apl

    @pytest.mark.slow
    def test_fig9_ordering(self):
        report = fig9(fast=True)
        imp = report.data["improvements"]
        assert imp["SSS"] > 0.05  # paper: 10.42%
        assert imp["SSS"] >= imp["MC"] - 0.01

    @pytest.mark.slow
    def test_fig10_small_overhead(self):
        report = fig10(fast=True)
        losses = report.data["losses"]
        assert 0 <= losses["SSS"] < 0.10  # paper: < 3.82%
        assert losses["SSS"] <= losses["MC"] + 0.01


class TestPower:
    def test_analytic_power_positive_and_mapping_dependent(self):
        instance = standard_instance("C1")
        results = run_algorithms(instance, fast=True, seed_tag="C1",
                                 algorithms=("Global", "SSS"))
        p_global = analytic_noc_power(instance, results["Global"].mapping)
        p_sss = analytic_noc_power(instance, results["SSS"].mapping)
        assert p_global.dynamic > 0
        # Global minimises rate-weighted hops, so its power is the lowest.
        assert p_global.dynamic <= p_sss.dynamic * 1.001

    @pytest.mark.slow
    def test_fig11_small_power_overhead(self):
        report = fig11(fast=True)
        overheads = report.data["overheads"]
        assert overheads["SSS"] < 0.10  # paper: < 2.7%

    def test_analytic_power_matches_simulator_roughly(self):
        """Cross-check the analytic activity estimate against the cycle
        simulator on one mapping (requests only, same flit accounting)."""
        from repro.core.problem import Mapping
        from repro.noc.simulator import NoCSimulator
        from repro.noc.traffic import MappedWorkloadTraffic

        instance = standard_instance("C2")
        mapping = Mapping(np.arange(instance.n))
        traffic = MappedWorkloadTraffic(
            instance, mapping, cycles_per_unit=1000, generate_replies=True, seed=0
        )
        sim = NoCSimulator(instance.mesh, traffic)
        res = sim.run(warmup=500, measure=4000)
        analytic = analytic_noc_power(instance, mapping)
        measured = res.power.dynamic
        assert measured == pytest.approx(analytic.dynamic, rel=0.5)


@pytest.mark.slow
class TestRuntime:
    def test_fig12_diminishing_returns(self):
        report = fig12(fast=True)
        sa_max = report.data["sa_max_apl"]
        budgets = report.data["budgets"]
        # More SA iterations never hurt (best-seen is monotone per run;
        # across independent runs allow small noise).
        assert sa_max[budgets[-1]] <= sa_max[budgets[0]] + 0.05
