"""Tests of batch artifact generation."""

import json

import pytest

from repro.experiments.artifacts import write_artifacts


class TestWriteArtifacts:
    def test_writes_text_json_and_index(self, tmp_path):
        written = write_artifacts(tmp_path, ["table2", "fig3", "fig5"], fast=True)
        assert set(written) == {"table2", "fig3", "fig5"}
        for experiment_id, path in written.items():
            assert path.exists()
            json_path = tmp_path / f"{experiment_id}.json"
            doc = json.loads(json_path.read_text())
            assert doc["experiment_id"] == experiment_id
            json.dumps(doc)  # fully JSON-representable
        index = (tmp_path / "INDEX.txt").read_text()
        assert "table2" in index and "fig5" in index

    def test_numpy_values_serialised(self, tmp_path):
        write_artifacts(tmp_path, ["fig3"], fast=True)
        doc = json.loads((tmp_path / "fig3.json").read_text())
        tc = doc["data"]["tc"]
        assert isinstance(tc, list) and isinstance(tc[0], list)
        assert tc[0][0] > tc[3][3]  # corner TC > centre TC survives the trip

    def test_unknown_id_rejected_before_running(self, tmp_path):
        with pytest.raises(ValueError):
            write_artifacts(tmp_path, ["fig99"])
        assert not (tmp_path / "INDEX.txt").exists()

    def test_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "artifacts"
        write_artifacts(target, ["table2"])
        assert (target / "table2.txt").exists()
