"""Tests of the robustness-study harnesses."""

import pytest

from repro.experiments.sensitivity import (
    latency_param_sensitivity,
    seed_sensitivity,
)


@pytest.mark.slow
class TestSeedSensitivity:
    def test_gains_persist_across_seeds(self):
        report = seed_sensitivity(config_names=("C1", "C3"), n_seeds=3)
        assert report.data["max_gain_mean"] > 0.04
        assert report.data["max_gain_min"] > 0.0  # SSS never loses to Global
        assert report.data["dev_gain_mean"] > 0.9
        assert "workload redraws" in report.text


@pytest.mark.slow
class TestParamSensitivity:
    def test_gains_persist_across_timing(self):
        report = latency_param_sensitivity("C2")
        for (td_q, td_s), cell in report.data.items():
            assert cell["gain"] > 0.0, f"SSS lost at td_q={td_q}, td_s={td_s}"
            assert cell["dev_ratio"] < 0.1
