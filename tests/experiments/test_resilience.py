"""Unit tests for the crash-safety primitives: ledger, report, atomic IO.

The integration-level drills (SIGKILL a worker mid-campaign, resume,
compare bytes) live in ``test_chaos.py``; this module pins the building
blocks those drills rest on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.resilience import (
    RunLedger,
    RunReport,
    backoff_delays,
    config_fingerprint,
    json_safe,
    resolve_backoff,
)
from repro.utils.atomicio import (
    atomic_open,
    atomic_write_text,
    checksum_path,
    quarantine,
    sha256_of,
    verify_checksum,
    write_checksum,
)


class TestConfigFingerprint:
    def test_stable_across_calls_and_kwarg_order(self):
        a = config_fingerprint("fig9", fast=True, engine="fastpath")
        b = config_fingerprint("fig9", engine="fastpath", fast=True)
        assert a == b
        assert len(a) == 16
        assert int(a, 16) >= 0  # hex

    def test_sensitive_to_experiment_and_knobs(self):
        base = config_fingerprint("fig9", fast=True)
        assert config_fingerprint("fig10", fast=True) != base
        assert config_fingerprint("fig9", fast=False) != base
        assert config_fingerprint("fig9", fast=True, engine="vector") != base

    def test_numpy_knobs_hash_like_python(self):
        assert config_fingerprint("x", n=np.int64(3)) == config_fingerprint("x", n=3)


class TestJsonSafe:
    def test_numpy_scalars_and_arrays(self):
        # np.float64 subclasses float and passes through the first branch
        # (matching the artifact writer's historical encoding); np.float32
        # does not, and exercises the NaN -> None conversion.
        out = json_safe(
            {"i": np.int32(4), "f": np.float64(2.5), "a": np.arange(3), "nan": np.float32("nan")}
        )
        assert out == {"i": 4, "f": 2.5, "a": [0, 1, 2], "nan": None}
        json.dumps(out)  # truly JSON-representable

    def test_non_string_keys_and_tuples(self):
        assert json_safe({1: (2, 3)}) == {"1": [2, 3]}


class TestRunLedger:
    def _make(self, path, **kw):
        kw.setdefault("experiment", "fig9")
        kw.setdefault("fingerprint", "f" * 16)
        return RunLedger(path, **kw)

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with self._make(path) as ledger:
            value = ledger.record("C1", {"x": np.float64(1.5), "y": [1, 2]})
        assert value == {"x": 1.5, "y": [1, 2]}  # canonical round-trip
        with self._make(path) as ledger:
            assert "C1" in ledger
            assert len(ledger) == 1
            assert ledger.get("C1") == value

    def test_record_returns_canonical_form(self, tmp_path):
        with self._make(tmp_path / "l.jsonl") as ledger:
            out = ledger.record("k", {2: np.int64(7)})
        # Keys stringified, numpy scalars native: the exact value a
        # resumed run will read back.
        assert out == {"2": 7}
        assert type(out["2"]) is int

    def test_fingerprint_mismatch_quarantines(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with self._make(path, fingerprint="a" * 16) as ledger:
            ledger.record("C1", 1)
        reopened = self._make(path, fingerprint="b" * 16)
        assert len(reopened) == 0
        assert reopened.recovered_from is not None
        assert reopened.recovered_from.name.endswith(".corrupt")
        assert reopened.recovered_from.exists()
        reopened.close()

    def test_truncated_tail_healed(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with self._make(path) as ledger:
            ledger.record("C1", {"v": 1})
            ledger.record("C2", {"v": 2})
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the last record mid-line
        with self._make(path) as ledger:
            assert "C1" in ledger and "C2" not in ledger
            ledger.record("C2", {"v": 2})  # append lands on a clean line
        with self._make(path) as ledger:
            assert len(ledger) == 2

    def test_mid_file_corruption_drops_tail(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with self._make(path) as ledger:
            for key in ("C1", "C2", "C3"):
                ledger.record(key, {"k": key})
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"k"', '"K"')  # break C2's hash binding
        path.write_text("\n".join(lines) + "\n")
        with self._make(path) as ledger:
            # C2's entry no longer matches its sha256: it and everything
            # after it are discarded; the clean prefix survives.
            assert "C1" in ledger
            assert "C2" not in ledger and "C3" not in ledger

    def test_unterminated_last_line_is_dropped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with self._make(path) as ledger:
            ledger.record("C1", 1)
            ledger.record("C2", 2)
        raw = path.read_bytes()
        path.write_bytes(raw.rstrip(b"\n"))  # newline never became durable
        with self._make(path) as ledger:
            assert "C1" in ledger and "C2" not in ledger

    def test_empty_file_is_fresh_not_corrupt(self, tmp_path):
        path = tmp_path / "l.jsonl"
        path.write_text("")
        with self._make(path) as ledger:
            assert len(ledger) == 0
            ledger.record("C1", 1)
        assert not (tmp_path / "l.jsonl.corrupt").exists()
        with self._make(path) as ledger:
            assert "C1" in ledger


class TestRunReport:
    def test_summary_and_dict(self):
        report = RunReport(cells_total=8, cells_resumed=3, cells_computed=5)
        report.retries = 2
        report.backoff_seconds = 0.5
        report.wall_seconds = 1.25
        text = report.summary()
        assert "5/8 cells computed" in text
        assert "3 resumed" in text
        assert "2 retried" in text
        doc = report.as_dict()
        json.dumps(doc)
        assert RunReport(**doc).summary() == text  # sidecar round-trips

    def test_failure_causes_capped(self):
        report = RunReport()
        for i in range(20):
            report.record_failure(ValueError(f"boom {i}"))
        assert len(report.failure_causes) == report._MAX_CAUSES
        assert report.failure_causes[-1] == "ValueError: boom 19"


class TestBackoffKnobs:
    def test_resolve_default_and_tuple(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRY_BACKOFF", raising=False)
        base, cap = resolve_backoff(None)
        assert 0 < base <= cap
        assert resolve_backoff((0.1, 1.0)) == (0.1, 1.0)
        assert resolve_backoff(0.2)[0] == 0.2

    def test_delays_deterministic_and_capped(self):
        d1 = [backoff_delays(2, a, (0.5, 4.0)) for a in range(1, 9)]
        d2 = [backoff_delays(2, a, (0.5, 4.0)) for a in range(1, 9)]
        assert d1 == d2
        assert all(d <= 4.0 for d in d1)
        assert all(d >= 0.25 for d in d1)  # jitter floor is half the raw delay


class TestAtomicIO:
    def test_atomic_write_and_checksum(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_text(path, '{"x": 1}\n', checksum=True)
        assert path.read_text() == '{"x": 1}\n'
        assert verify_checksum(path) is True
        sidecar = checksum_path(path)
        assert sidecar.read_text() == f"{sha256_of(path)}  a.json\n"

    def test_failed_write_leaves_original_untouched(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as fh:
                fh.write("partial garbage")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "original"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_verify_detects_corruption(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write_text(path, "good bytes", checksum=True)
        path.write_text("evil bytes")
        assert verify_checksum(path) is False
        assert verify_checksum(tmp_path / "missing.txt") is None

    def test_quarantine_moves_file_and_sidecar(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write_text(path, "damaged", checksum=True)
        target = quarantine(path)
        assert target == tmp_path / "a.txt.corrupt"
        assert target.exists() and not path.exists()
        assert not checksum_path(path).exists()
        assert (tmp_path / "a.txt.corrupt.sha256").exists()
