"""Tests of the cycle-measured APL comparison harness."""

import pytest

from repro.experiments.measured import measured_apl_comparison


@pytest.mark.slow
class TestMeasuredComparison:
    @pytest.fixture(scope="class")
    def report(self):
        return measured_apl_comparison("C1", fast=True, cycles=4_000)

    def test_ordering_survives_measurement(self, report):
        """SSS must beat Global on *measured* max-APL and dev-APL too."""
        glob = report.data["Global"]
        sss = report.data["SSS"]
        assert sss["measured_max"] < glob["measured_max"]
        assert sss["measured_dev"] < glob["measured_dev"]

    def test_measured_tracks_analytic(self, report):
        """Measured values exceed analytic by a bounded convention offset
        (destination pipeline + reply serialization), not arbitrarily."""
        for alg in ("Global", "SSS"):
            d = report.data[alg]
            offset = d["measured_max"] - d["analytic_max"]
            assert 0 < offset < 8

    def test_per_app_measurements_present(self, report):
        assert len(report.data["SSS"]["measured_by_app"]) == 4
        assert "measured APL" in report.text
