"""Chaos drills: kill/wedge workers mid-campaign, corrupt artifacts, resume.

The acceptance bar for the crash-safety layer is byte-identity: a fig9
campaign that is SIGKILLed (or deliberately stopped) partway through and
then re-launched must produce artifacts byte-for-byte identical to an
uninterrupted run's.  These tests stage exactly those crashes using the
marker-file helpers in :mod:`tests.experiments.chaos` (monkeypatches do
not reach pool workers; marker files do).
"""

from __future__ import annotations

import pytest

from repro.experiments.artifacts import write_artifacts
from repro.experiments.parallel import CellFailure, parallel_map
from repro.experiments.resilience import RunInterrupted, RunLedger, config_fingerprint
from repro.workloads.parsec import CONFIG_NAMES

# Plain import: pytest prepends this directory to sys.path (no package
# __init__.py here), and pool workers resolve the module the same way.
from chaos import arm_kill, arm_wedge, chaos_sweep_cell, flip_tail_byte, wedge_sweep_cell

pytestmark = pytest.mark.slow


def _fig9_ledger(output_dir):
    return RunLedger(
        output_dir / ".ledger" / "fig9.jsonl",
        experiment="fig9",
        fingerprint=config_fingerprint("fig9", fast=True, engine="fastpath"),
    )


def _artifact_bytes(directory, name="fig9"):
    return (
        (directory / f"{name}.txt").read_bytes(),
        (directory / f"{name}.json").read_bytes(),
    )


class TestSigkillResume:
    def test_killed_worker_then_resume_is_byte_identical(self, tmp_path):
        out_resumed = tmp_path / "resumed"
        out_clean = tmp_path / "clean"
        chaos_dir = tmp_path / "chaos"
        cells = [(name, True, str(chaos_dir)) for name in CONFIG_NAMES]

        # Run 1: the C3 worker is SIGKILLed mid-campaign.  With no
        # retries the campaign dies (CellFailure after the broken pool is
        # replaced) — but every cell that finished first was journaled.
        arm_kill(chaos_dir, "C3")
        out_resumed.mkdir()
        with _fig9_ledger(out_resumed) as ledger:
            with pytest.raises(CellFailure):
                parallel_map(
                    chaos_sweep_cell,
                    cells,
                    workers=2,
                    timeout=120,
                    retries=0,
                    backoff=0,
                    ledger=ledger,
                    cell_keys=CONFIG_NAMES,
                )
        with _fig9_ledger(out_resumed) as ledger:
            survivors = len(ledger)
        assert 0 < survivors < len(CONFIG_NAMES)  # killed cell never journaled

        # Run 2: relaunch through the real artifact writer, which opens
        # the same ledger (same experiment + fingerprint) and resumes.
        write_artifacts(out_resumed, ["fig9"], fast=True, workers=2)

        # Reference: an uninterrupted, never-journaled run.
        write_artifacts(out_clean, ["fig9"], fast=True, resume=False)
        assert _artifact_bytes(out_resumed) == _artifact_bytes(out_clean)

    def test_wedged_worker_journals_survivors(self, tmp_path):
        chaos_dir = tmp_path / "chaos"
        cells = [(name, True, str(chaos_dir)) for name in CONFIG_NAMES[:4]]
        arm_wedge(chaos_dir, "C2")
        with RunLedger(
            tmp_path / "l.jsonl", experiment="fig9", fingerprint="t" * 16
        ) as ledger:
            out = parallel_map(
                wedge_sweep_cell,
                cells,
                workers=2,
                timeout=15,
                retries=0,
                backoff=0,
                on_failure="none",
                ledger=ledger,
                cell_keys=CONFIG_NAMES[:4],
            )
            assert out[1] is None  # the wedged cell timed out
            done = [k for k in CONFIG_NAMES[:4] if k in ledger]
        assert "C2" not in done
        assert len(done) == 3  # every survivor was journaled


class TestDeliberateInterrupt:
    def test_max_cells_partial_then_resume_byte_identical(self, tmp_path):
        out = tmp_path / "partial"
        out_clean = tmp_path / "clean"

        with pytest.raises(RunInterrupted):
            write_artifacts(out, ["fig9"], fast=True, max_cells=3)
        with _fig9_ledger(out) as ledger:
            assert len(ledger) == 3
        assert not (out / "fig9.json").exists()  # no artifact from a partial run

        write_artifacts(out, ["fig9"], fast=True)
        run_doc = (out / "fig9.run.json").read_text()
        assert '"cells_resumed": 3' in run_doc
        assert '"cells_computed": 5' in run_doc

        write_artifacts(out_clean, ["fig9"], fast=True, resume=False)
        assert _artifact_bytes(out) == _artifact_bytes(out_clean)

    def test_no_resume_discards_journal(self, tmp_path):
        out = tmp_path / "a"
        with pytest.raises(RunInterrupted):
            write_artifacts(out, ["fig9"], fast=True, max_cells=2)
        assert (out / ".ledger" / "fig9.jsonl").exists()
        write_artifacts(out, ["fig9"], fast=True, resume=False)
        assert not (out / ".ledger" / "fig9.jsonl").exists()


class TestArtifactCorruption:
    def test_corrupted_artifact_quarantined_and_recomputed(self, tmp_path):
        out = tmp_path / "art"
        write_artifacts(out, ["fig3"], fast=True)  # fig3: cheap, no fan-out
        good = (out / "fig3.json").read_bytes()
        flip_tail_byte(out / "fig3.json")

        write_artifacts(out, ["fig3"], fast=True)
        assert (out / "fig3.json.corrupt").exists()  # damaged bytes kept for autopsy
        assert (out / "fig3.json").read_bytes() == good  # recomputed, identical

    def test_stale_ledger_of_other_config_quarantined(self, tmp_path):
        out = tmp_path / "art"
        with pytest.raises(RunInterrupted):
            write_artifacts(out, ["fig9"], fast=True, max_cells=1)
        # Same directory, different knobs: the fingerprint changes, so
        # the stale journal must be quarantined, not resumed from.
        with RunLedger(
            out / ".ledger" / "fig9.jsonl",
            experiment="fig9",
            fingerprint=config_fingerprint("fig9", fast=False, engine="fastpath"),
        ) as ledger:
            assert len(ledger) == 0
            assert ledger.recovered_from is not None
