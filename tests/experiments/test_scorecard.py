"""Tests of the reproduction scorecard."""

import pytest

from repro.experiments.scorecard import CLAIMS, run_scorecard


class TestScorecard:
    def test_claims_cover_all_quantitative_artifacts(self):
        artifacts = {c.artifact for c in CLAIMS}
        assert {"table1", "table3", "table4", "fig5", "fig8", "fig9",
                "fig10", "fig11", "fig12"} <= artifacts

    @pytest.mark.slow
    def test_all_claims_pass_fast(self):
        report = run_scorecard(fast=True)
        failed = [r for r in report.data["rows"] if r[2] == "FAIL"]
        assert not failed, f"claims failed: {failed}"
        assert report.data["passed"] == report.data["total"]
        assert "reproduction scorecard" in report.text
