"""Chaos-engineering helpers for the resilience tests (not a test module).

The hard part of testing crash safety is that monkeypatches do not
travel into ``ProcessPoolExecutor`` workers — the worker imports this
module fresh and runs the *real* code.  So the chaos cells coordinate
through marker files instead: a test arms a marker under a temp dir, and
the module-level (hence picklable) cell functions check for it inside
the worker.

* :func:`chaos_sweep_cell` — a drop-in for
  :func:`repro.experiments.figures._algorithm_sweep_cell` that SIGKILLs
  its own worker process when the kill marker is armed (one-shot: the
  marker is consumed first, so retries/resumes run the real cell).
* :func:`wedge_sweep_cell` — same, but wedges (sleeps far beyond any
  test timeout) instead of dying, to exercise the timeout path.
* :func:`crash_in_worker` — dies only when *not* in the given parent
  pid, for driving pool replacement past the degradation threshold
  without ever killing the test process itself.
* File-corruption helpers (:func:`flip_tail_byte`,
  :func:`truncate_fraction`) for checksum/ledger-healing tests.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.experiments.figures import _algorithm_sweep_cell

KILL_MARKER = "kill.marker"
WEDGE_MARKER = "wedge.marker"


def arm_kill(chaos_dir: str | Path, cell_name: str) -> Path:
    """Arm a one-shot SIGKILL for the named cell under ``chaos_dir``."""
    marker = Path(chaos_dir) / f"{KILL_MARKER}.{cell_name}"
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.write_text("armed\n")
    return marker


def arm_wedge(chaos_dir: str | Path, cell_name: str) -> Path:
    """Arm a one-shot wedge (long sleep) for the named cell."""
    marker = Path(chaos_dir) / f"{WEDGE_MARKER}.{cell_name}"
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.write_text("armed\n")
    return marker


def _consume(marker: Path) -> bool:
    """Atomically claim a one-shot marker (False if already consumed)."""
    try:
        marker.unlink()
        return True
    except FileNotFoundError:
        return False


def chaos_sweep_cell(cell):
    """``_algorithm_sweep_cell`` that SIGKILLs its worker when armed.

    ``cell`` is ``(config_name, fast, chaos_dir)``.  SIGKILL (not
    ``sys.exit``) so the worker gets no chance to flush or clean up —
    the most hostile crash a process can suffer.  The kill lands half a
    second into the cell: a pool break discards any results still queued
    for delivery, so an instant death could erase cells that *finished*
    before it — a real crash happens mid-work, not at dispatch.
    """
    name, fast, chaos_dir = cell
    if _consume(Path(chaos_dir) / f"{KILL_MARKER}.{name}"):
        time.sleep(0.5)
        os.kill(os.getpid(), signal.SIGKILL)
    return _algorithm_sweep_cell((name, fast))


def wedge_sweep_cell(cell):
    """``_algorithm_sweep_cell`` that wedges (sleeps 60s) when armed."""
    name, fast, chaos_dir = cell
    if _consume(Path(chaos_dir) / f"{WEDGE_MARKER}.{name}"):
        time.sleep(60)
    return _algorithm_sweep_cell((name, fast))


def crash_in_worker(cell):
    """Die instantly — but only inside a pool worker, never the parent.

    ``cell`` is ``(x, parent_pid)``; returns ``x * 3`` when run in the
    parent (the degraded-serial reference), ``os._exit(13)`` otherwise.
    Drives ``parallel_map`` past MAX_POOL_REPLACEMENTS without risking
    the test process.
    """
    x, parent_pid = cell
    if os.getpid() != parent_pid:
        os._exit(13)
    return x * 3


def flip_tail_byte(path: str | Path) -> None:
    """Corrupt a file in place by flipping its last byte."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))


def truncate_fraction(path: str | Path, fraction: float = 0.5) -> None:
    """Truncate a file to the given fraction of its size (torn write)."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(int(size * fraction))
