"""Tests of the shared experiment infrastructure."""

import numpy as np
import pytest

from repro.experiments.base import (
    ALGORITHM_ORDER,
    run_algorithms,
    standard_instance,
    standard_model,
)


class TestStandardSetup:
    def test_standard_model_is_canonical(self):
        model = standard_model()
        assert model.n_tiles == 64
        assert model.mc_tiles == (0, 7, 56, 63)

    def test_standard_instance_threads_scale_with_mesh(self):
        inst = standard_instance("C1", model=standard_model(4))
        assert inst.n == 16
        assert inst.workload.n_apps == 4

    def test_instances_deterministic(self):
        a = standard_instance("C3")
        b = standard_instance("C3")
        assert np.array_equal(a.workload.cache_rates, b.workload.cache_rates)


class TestRunAlgorithms:
    def test_subset_selection(self):
        inst = standard_instance("C2", model=standard_model(4))
        results = run_algorithms(inst, fast=True, algorithms=("Global", "SSS"))
        assert set(results) == {"Global", "SSS"}

    def test_unknown_algorithm_rejected(self):
        inst = standard_instance("C2", model=standard_model(4))
        with pytest.raises(ValueError):
            run_algorithms(inst, algorithms=("Quantum",))

    def test_all_four_run_fast(self):
        inst = standard_instance("C2", model=standard_model(4))
        results = run_algorithms(inst, fast=True, seed_tag="t")
        assert set(results) == set(ALGORITHM_ORDER)
        for r in results.values():
            assert sorted(r.mapping.perm.tolist()) == list(range(16))

    def test_seed_tag_changes_stochastic_results(self):
        inst = standard_instance("C2", model=standard_model(4))
        a = run_algorithms(inst, fast=True, seed_tag="x", algorithms=("MC",))["MC"]
        b = run_algorithms(inst, fast=True, seed_tag="y", algorithms=("MC",))["MC"]
        assert not np.array_equal(a.mapping.perm, b.mapping.perm)
