"""Tests of the experiments command-line entry point."""

import pytest

from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_single_experiment(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "10.3375" in out

    def test_fast_flag(self, capsys):
        assert main(["table2", "--fast"]) == 0
        assert "8x8 mesh" in capsys.readouterr().out

    def test_output_dir(self, capsys, tmp_path):
        target = tmp_path / "artifacts"
        assert main(["fig3", "--output-dir", str(target)]) == 0
        assert (target / "fig3.txt").exists()
        assert (target / "fig3.json").exists()
        assert (target / "INDEX.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
