"""Tests of the event-driven CMP scheduler substrate."""

import numpy as np
import pytest

from repro.core.latency import Mesh, MeshLatencyModel
from repro.core.workload import Application
from repro.scheduler import (
    CMPScheduler,
    SchedulerEvent,
    SSSRemapPolicy,
    StaticFirstFitPolicy,
    poisson_schedule,
)


def make_app(name: str, scale: float = 1.0, threads: int = 4) -> Application:
    rng = np.random.default_rng(hash(name) % 2**32)
    return Application(
        name, rng.uniform(0.5, 2, threads) * scale, rng.uniform(0, 0.3, threads) * scale
    )


@pytest.fixture
def model():
    return MeshLatencyModel(Mesh.square(4))


class TestEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerEvent(when=0, kind="pause")
        with pytest.raises(ValueError):
            SchedulerEvent(when=0, kind="arrive")
        with pytest.raises(ValueError):
            SchedulerEvent(when=0, kind="depart")


class TestScheduler:
    def simple_events(self):
        return [
            SchedulerEvent(0, "arrive", app=make_app("a")),
            SchedulerEvent(5, "arrive", app=make_app("b", scale=3)),
            SchedulerEvent(12, "depart", name="a"),
            SchedulerEvent(20, "arrive", app=make_app("c")),
        ]

    def test_intervals_partition_time(self, model):
        scheduler = CMPScheduler(model, SSSRemapPolicy())
        result = scheduler.run(self.simple_events(), horizon=30)
        spans = [(r.start, r.end) for r in result.intervals]
        assert spans[0][0] == 0
        assert spans[-1][1] == 30
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 == s2

    def test_running_sets_tracked(self, model):
        scheduler = CMPScheduler(model, SSSRemapPolicy())
        result = scheduler.run(self.simple_events(), horizon=30)
        by_start = {r.start: set(r.running) for r in result.intervals}
        assert by_start[0] == {"a"}
        assert by_start[5] == {"a", "b"}
        assert by_start[12] == {"b"}
        assert by_start[20] == {"b", "c"}

    def test_remap_count(self, model):
        scheduler = CMPScheduler(model, SSSRemapPolicy())
        result = scheduler.run(self.simple_events(), horizon=30)
        assert result.n_remaps == 4  # every change triggers one
        assert result.total_remap_seconds > 0

    def test_sss_policy_beats_first_fit(self, model):
        events = self.simple_events()
        sss = CMPScheduler(model, SSSRemapPolicy()).run(events, horizon=30)
        fit = CMPScheduler(model, StaticFirstFitPolicy()).run(events, horizon=30)
        assert sss.time_weighted_max_apl() <= fit.time_weighted_max_apl() + 1e-9
        assert sss.time_weighted_dev_apl() < fit.time_weighted_dev_apl()

    def test_idle_chip_interval(self, model):
        events = [
            SchedulerEvent(5, "arrive", app=make_app("a")),
            SchedulerEvent(10, "depart", name="a"),
        ]
        result = CMPScheduler(model, SSSRemapPolicy()).run(events, horizon=20)
        assert result.intervals[0].evaluation is None  # 0..5 idle
        assert result.intervals[-1].evaluation is None  # 10..20 idle

    def test_overcommit_rejected(self, model):
        events = [
            SchedulerEvent(0, "arrive", app=make_app("big", threads=12)),
            SchedulerEvent(1, "arrive", app=make_app("big2", threads=12)),
        ]
        with pytest.raises(ValueError):
            CMPScheduler(model, SSSRemapPolicy()).run(events, horizon=10)

    def test_duplicate_arrival_rejected(self, model):
        events = [
            SchedulerEvent(0, "arrive", app=make_app("a")),
            SchedulerEvent(1, "arrive", app=make_app("a")),
        ]
        with pytest.raises(ValueError):
            CMPScheduler(model, SSSRemapPolicy()).run(events, horizon=10)

    def test_unknown_departure_rejected(self, model):
        events = [SchedulerEvent(0, "depart", name="ghost")]
        with pytest.raises(ValueError):
            CMPScheduler(model, SSSRemapPolicy()).run(events, horizon=10)

    def test_no_busy_interval_raises(self, model):
        result = CMPScheduler(model, SSSRemapPolicy()).run([], horizon=10)
        with pytest.raises(ValueError):
            result.time_weighted_max_apl()


class TestPoissonSchedule:
    def test_generates_valid_timeline(self, model):
        pool = [make_app("x"), make_app("y", scale=2)]
        events = poisson_schedule(pool, horizon=200, seed=0)
        assert events == sorted(events, key=lambda e: e.when)
        # Every departure refers to a prior arrival.
        seen = set()
        for e in events:
            if e.kind == "arrive":
                seen.add(e.app.name)
            else:
                assert e.name in seen

    def test_respects_concurrency_cap(self, model):
        pool = [make_app("x")]
        events = poisson_schedule(
            pool, horizon=300, mean_interarrival=1.0, mean_lifetime=50.0,
            max_concurrent=3, seed=1,
        )
        live = 0
        peak = 0
        for e in events:
            live += 1 if e.kind == "arrive" else -1
            peak = max(peak, live)
        assert peak <= 3

    def test_runs_through_scheduler(self, model):
        pool = [make_app("x"), make_app("y", scale=2)]
        events = poisson_schedule(
            pool, horizon=100, max_concurrent=3, seed=2,
            mean_interarrival=5.0, mean_lifetime=15.0,
        )
        result = CMPScheduler(model, SSSRemapPolicy()).run(events, horizon=100)
        assert result.n_remaps >= 1
        assert result.time_weighted_max_apl() > 0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            poisson_schedule([], horizon=10)
