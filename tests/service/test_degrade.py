"""The degradation ladder: level selection, stale index, served answers."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.canonical import canonicalize
from repro.service.degrade import (
    LEVEL_BOUNDS,
    LEVEL_FULL,
    LEVEL_STALE,
    DegradeController,
    NearestIndex,
)


class TestLevelSelection:
    def test_off_never_degrades(self):
        c = DegradeController("off")
        assert c.level_for(pressure=1.0, remaining=0.0, estimate=10.0) == LEVEL_FULL

    def test_opt_out_never_degrades(self):
        c = DegradeController("auto")
        assert c.level_for(pressure=1.0, allow=False) == LEVEL_FULL

    def test_forced_mode_wins(self):
        c = DegradeController(LEVEL_BOUNDS)
        assert c.level_for(pressure=0.0) == LEVEL_BOUNDS

    def test_auto_follows_pressure(self):
        c = DegradeController("auto", bounds_pressure=0.5, stale_pressure=0.85)
        assert c.level_for(pressure=0.1) == LEVEL_FULL
        assert c.level_for(pressure=0.5) == LEVEL_BOUNDS
        assert c.level_for(pressure=0.9) == LEVEL_STALE

    def test_infeasible_deadline_degrades(self):
        c = DegradeController("auto", deadline_margin=1.5)
        assert c.level_for(pressure=0.0, remaining=1.0, estimate=2.0) == LEVEL_BOUNDS
        assert c.level_for(pressure=0.0, remaining=10.0, estimate=2.0) == LEVEL_FULL
        # No estimate yet (cold service): assume feasible.
        assert c.level_for(pressure=0.0, remaining=0.01, estimate=None) == LEVEL_FULL

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DegradeController("yolo")

    def test_record_counts_by_level(self):
        registry = MetricsRegistry()
        c = DegradeController("auto", registry=registry)
        c.record(LEVEL_FULL)
        c.record(LEVEL_BOUNDS)
        c.record(LEVEL_BOUNDS)
        c.record(LEVEL_STALE)
        assert registry.counter("serve_degraded_total", level=LEVEL_BOUNDS).value == 2
        assert registry.counter("serve_degraded_total", level=LEVEL_STALE).value == 1
        # full is not a degradation and must not be counted
        assert registry.counter("serve_degraded_total", level=LEVEL_FULL).value == 0


class TestNearestIndex:
    def _canon(self, spec):
        return canonicalize(spec)

    def test_same_shape_different_rates_share_key(self, spec2):
        a = self._canon(spec2).problem
        b_spec = dict(spec2)
        b_spec["apps"] = [
            dict(app, cache_rates=[r * 1.5 for r in app["cache_rates"]])
            for app in spec2["apps"]
        ]
        b = self._canon(b_spec).problem
        assert a.fingerprint != b.fingerprint
        assert NearestIndex.shape_key(a, "sss", True) == NearestIndex.shape_key(
            b, "sss", True
        )

    def test_algorithm_and_bounds_split_shapes(self, spec2):
        p = self._canon(spec2).problem
        assert NearestIndex.shape_key(p, "sss", True) != NearestIndex.shape_key(
            p, "global", True
        )
        assert NearestIndex.shape_key(p, "sss", True) != NearestIndex.shape_key(
            p, "sss", False
        )

    def test_lru_bound(self):
        idx = NearestIndex(capacity=2)
        idx.put(("a",), "k1", "f1")
        idx.put(("b",), "k2", "f2")
        idx.put(("c",), "k3", "f3")
        assert idx.get(("a",)) is None
        assert idx.get(("c",)) == ("k3", "f3")
        assert len(idx) == 2

    def test_freshest_donor_wins(self):
        idx = NearestIndex()
        idx.put(("s",), "old", "f-old")
        idx.put(("s",), "new", "f-new")
        assert idx.get(("s",)) == ("new", "f-new")


class TestDegradedServing:
    """End-to-end degraded answers through the live daemon."""

    def test_bounds_only_matches_cli_bound_json(self, make_service, capsys):
        from repro.cli import main as cli_main

        client = make_service(degrade="bounds_only")
        doc = client.map({"workload": "C1", "mesh": 8})
        assert doc["result"]["perm"] is None
        assert doc["result"]["evaluation"] is None
        assert doc["result"]["degraded"] == "bounds_only"
        assert doc["meta"]["degraded"] == "bounds_only"

        assert cli_main(["bound", "--workload", "C1", "--mesh", "8", "--json"]) == 0
        cli_line = capsys.readouterr().out.strip()
        served = json.dumps(
            doc["result"]["bounds"], sort_keys=True, separators=(",", ":")
        )
        # Degraded answers stay certified: same bytes as the direct CLI.
        assert served == cli_line

    def test_degraded_total_counts(self, make_service, spec2):
        client = make_service(degrade="bounds_only")
        client.map(spec2)
        counter = client.service.registry.counter(
            "serve_degraded_total", level="bounds_only"
        )
        assert counter.value == 1

    def test_opt_out_is_served_fully_even_when_forced(self, make_service, spec2):
        client = make_service(degrade="bounds_only")
        doc = client.map({**spec2, "degrade": False})
        assert doc["result"]["perm"] is not None
        assert "degraded" not in doc["result"]
        assert "degraded" not in doc["meta"]

    def test_stale_serves_same_shape_donor(self, make_service, spec2):
        client = make_service(degrade="cached_nearest")
        # Prime a donor via opt-out (full solve fills cache + shape index).
        donor = client.map({**spec2, "degrade": False})
        donor_fp = donor["meta"]["fingerprint"]

        # Same shape, different rates: a distinct problem.
        warm_spec = dict(spec2)
        warm_spec["apps"] = [
            dict(app, cache_rates=[r * 1.25 for r in app["cache_rates"]])
            for app in spec2["apps"]
        ]
        doc = client.map(warm_spec)
        assert doc["meta"]["degraded"] == "cached_nearest"
        assert doc["meta"]["cache"] == "stale"
        assert doc["meta"]["stale_fingerprint"] == donor_fp
        assert doc["meta"]["fingerprint"] != donor_fp
        assert doc["result"]["degraded"] == "cached_nearest"
        # The donor's mapping, translated into this request's labels.
        assert sorted(doc["result"]["perm"]) == sorted(donor["result"]["perm"])

    def test_stale_without_donor_falls_back_to_bounds(self, make_service, spec2):
        client = make_service(degrade="cached_nearest")
        doc = client.map(spec2)
        assert doc["meta"]["degraded"] == "bounds_only"
        assert doc["result"]["bounds"] is not None

    def test_stale_schedules_revalidation(self, make_service, spec2):
        import time

        client = make_service(degrade="cached_nearest")
        client.map({**spec2, "degrade": False})
        warm_spec = dict(spec2)
        warm_spec["apps"] = [
            dict(app, mem_rates=[r * 2.0 for r in app["mem_rates"]])
            for app in spec2["apps"]
        ]
        doc = client.map(warm_spec)
        assert doc["meta"]["degraded"] == "cached_nearest"
        reval = client.service.registry.counter("serve_revalidate_total")
        assert reval.value == 1
        # The background fill lands the real entry: the next identical
        # request is a genuine cache hit at full fidelity.
        deadline = time.time() + 10
        while time.time() < deadline:
            fresh = client.map({**warm_spec, "degrade": False})
            if fresh["meta"]["cache"] in ("hit", "coalesced"):
                break
            time.sleep(0.05)
        else:
            pytest.fail("revalidated entry never became a cache hit")

    def test_unloaded_auto_stays_full_fidelity(self, make_service, spec2):
        client = make_service(degrade="auto")
        doc = client.map(spec2)
        assert "degraded" not in doc["result"]
        assert "degraded" not in doc["meta"]
        assert doc["result"]["perm"] is not None
