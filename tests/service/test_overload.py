"""Overload chaos: bursts, wedged workers, deadlines, and graceful drain.

The daemon's survival contract under hostile conditions: shed with
retry hints instead of 500ing, never let expired or doomed work occupy
a worker, and drain deterministically on shutdown.
"""

from __future__ import annotations

import json
import threading
import time

import pytest


def _unique_spec(index: int) -> dict:
    """A distinct (never-cached) two-app problem per index."""
    bump = 1.0 + index * 0.01
    return {
        "mesh": 4,
        "apps": [
            {
                "name": "heavy",
                "cache_rates": [2.0 * bump, 1.5, 1.0, 0.5],
                "mem_rates": [0.4, 0.3, 0.2, 0.1],
            },
            {
                "name": "light",
                "cache_rates": [0.8, 0.6 * bump],
                "mem_rates": [0.2, 0.05],
            },
        ],
    }


def _slow_solve(service, delay: float):
    """Wrap the service's solve so every fill takes at least ``delay``."""
    orig = service._solve_sync

    def slow(*args, **kwargs):
        time.sleep(delay)
        return orig(*args, **kwargs)

    service._solve_sync = slow


class TestTimeoutCacheRegression:
    """Satellite 1: a timed-out unique problem is a cache hit on retry."""

    def test_timed_out_fill_completes_and_serves_retry(self, make_service, spec2):
        client = make_service()
        spec = {**spec2, "mesh": 8}
        _slow_solve(client.service, 0.3)
        status, headers, payload = client.request_full(
            "POST", "/map", {**spec, "timeout": 0.05}
        )
        assert status == 504
        assert "timed out" in payload["error"]
        # 504s carry a retry hint, in the header and the body.
        assert int(headers["retry-after"]) >= 1
        assert payload["retry_after"] == int(headers["retry-after"])

        # The fill detached the requester's deadline and keeps running;
        # the retry must land on its result, not re-solve.
        deadline = time.time() + 10
        while time.time() < deadline:
            doc = client.map(spec)
            if doc["meta"]["cache"] in ("hit", "coalesced"):
                break
            time.sleep(0.05)
        else:
            pytest.fail("retry after timeout never hit the cache")
        assert client.service.report.cells_computed == 1  # one solve total


class TestSaturationBurst:
    def test_4x_burst_sheds_cleanly(self, make_service):
        client = make_service(
            workers=2, max_inflight=2, max_queue=2, degrade="off"
        )
        _slow_solve(client.service, 0.15)
        capacity = 4  # 2 inflight + 2 queued
        burst = 4 * capacity
        results = []
        lock = threading.Lock()

        def fire(i: int) -> None:
            status, headers, payload = client.request_full(
                "POST", "/map", _unique_spec(i), timeout=60.0
            )
            with lock:
                results.append((status, headers, payload))

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(burst)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)

        assert len(results) == burst
        statuses = [s for s, _, _ in results]
        assert 500 not in statuses, "overload must never produce a 500"
        served = [r for r in results if r[0] == 200]
        shed = [r for r in results if r[0] == 429]
        assert served, "some of the burst must be served"
        assert shed, "a 4x burst over a bounded queue must shed"
        for _status, headers, payload in shed:
            assert int(headers["retry-after"]) >= 1
            assert payload["reason"] == "queue_full"
        registry = client.service.registry
        assert registry.counter("serve_shed_total", reason="queue_full").value == len(shed)

    def test_burst_with_degradation_serves_everyone(self, make_service):
        client = make_service(
            workers=2, max_inflight=2, max_queue=4, degrade="auto"
        )
        _slow_solve(client.service, 0.1)
        results = []
        lock = threading.Lock()

        def fire(i: int) -> None:
            status, _headers, payload = client.request_full(
                "POST", "/map", _unique_spec(i), timeout=60.0
            )
            with lock:
                results.append((status, payload))

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        statuses = [s for s, _ in results]
        assert 500 not in statuses
        # Everything not shed is answered — some fully, some degraded,
        # every degraded answer clearly marked.
        for status, payload in results:
            if status == 200 and "degraded" in payload["meta"]:
                assert payload["result"]["bounds"] is not None


class TestWedgedWorkers:
    def test_wedged_solves_time_out_then_trip_the_pool(self, make_service, spec2):
        client = make_service(
            task_timeout=0.1, retries=0, failure_budget=1, max_queue=4
        )

        def wedge(*args, **kwargs):
            time.sleep(30)

        client.service._solve_sync = wedge
        s1, h1, _ = client.request_full("POST", "/map", _unique_spec(1))
        assert s1 == 504  # abandoned thread -> timeout, not a 500
        assert "retry-after" in h1
        s2, _h2, _ = client.request_full("POST", "/map", _unique_spec(2))
        assert s2 == 503  # failure budget exhausted mid-request
        # The pool is now unhealthy: shedding happens at the door.
        s3, h3, p3 = client.request_full("POST", "/map", _unique_spec(3))
        assert s3 == 503
        assert p3["reason"] == "pool_unhealthy"
        assert int(h3["retry-after"]) >= 1
        registry = client.service.registry
        assert registry.counter("serve_worker_wedged_total").value >= 2
        assert (
            registry.counter("serve_shed_total", reason="pool_unhealthy").value == 1
        )


class TestDeadlines:
    def test_default_deadline_applies_server_side(self, make_service, spec2):
        client = make_service(default_deadline=0.05)
        _slow_solve(client.service, 0.5)
        status, headers, payload = client.request_full("POST", "/map", spec2)
        assert status == 504
        assert "retry-after" in headers

    def test_expired_deadline_is_counted(self, make_service, spec2):
        client = make_service()
        status, _headers, _payload = client.request_full(
            "POST", "/map", {**spec2, "timeout": 1e-6}
        )
        assert status == 504
        registry = client.service.registry
        total = sum(
            m.value
            for m in registry
            if m.name == "serve_deadline_expired_total"
        )
        assert total >= 1


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_sheds_new(self, make_service, spec2):
        client = make_service(drain_timeout=10.0)
        _slow_solve(client.service, 0.4)
        inflight_result = {}

        def slow_request() -> None:
            inflight_result["r"] = client.request_full("POST", "/map", spec2)

        t = threading.Thread(target=slow_request)
        t.start()
        time.sleep(0.15)  # let it claim a worker
        status, payload = client.post("/shutdown")
        assert status == 200
        assert payload["status"] == "draining"
        # New work is refused immediately with a retry hint...
        s_new, h_new, p_new = client.request_full("POST", "/map", _unique_spec(9))
        assert s_new == 503
        assert p_new["reason"] == "draining"
        assert "retry-after" in h_new
        # ...readiness goes false...
        s_ready, ready_doc = client.get("/readyz")
        assert s_ready == 503
        assert ready_doc["status"] == "draining"
        # ...and the in-flight request still completes at full fidelity.
        t.join(30)
        status, _headers, doc = inflight_result["r"]
        assert status == 200
        assert doc["result"]["perm"] is not None
        # A second shutdown is a no-op progress report, not a second drain.
        status, payload = client.post("/shutdown")
        assert status == 200
        assert payload["status"] == "draining"

    def test_drain_timeout_dumps_flight_record_anyway(self, make_service, tmp_path):
        flight_out = tmp_path / "flight.json"
        client = make_service(
            trace=True, drain_timeout=0.1, flight_out=str(flight_out)
        )
        client.map(_unique_spec(0))  # one completed request on record
        _slow_solve(client.service, 5.0)

        def stuck_request() -> None:
            try:
                client.request_full("POST", "/map", _unique_spec(1), timeout=30)
            except Exception:
                pass  # the server may close the socket mid-drain

        t = threading.Thread(target=stuck_request, daemon=True)
        t.start()
        time.sleep(0.2)
        status, payload = client.post("/shutdown")
        assert status == 200
        # The drain gives up on the wedged request but still writes the
        # deterministic final dump before stopping.
        deadline = time.time() + 10
        while time.time() < deadline and not flight_out.exists():
            time.sleep(0.05)
        assert flight_out.exists()
        dump = json.loads(flight_out.read_text())
        assert dump["schema"] == "repro-serve-requests"
        assert dump["recorded"] >= 1


class TestReadiness:
    def test_ready_service_answers_200(self, client):
        status, payload = client.get("/readyz")
        assert status == 200
        assert payload["status"] == "ready"
        assert "backend" in payload

    def test_starting_service_answers_503(self, make_service):
        client = make_service()
        client.service.ready = False  # as before kernel warmup finishes
        status, payload = client.get("/readyz")
        assert status == 503
        assert payload["status"] == "starting"

    def test_healthz_reports_admission_and_breakers(self, client, spec2):
        client.map(spec2)
        _status, payload = client.get("/healthz")
        assert payload["admission"]["admitted"] == 1
        assert payload["admission"]["shed"] == 0
        assert payload["ready"] is True
        assert payload["draining"] is False
        assert isinstance(payload["breakers"], dict)
        assert payload["degrade_mode"] == "auto"
