"""Admission control, deadlines, and circuit breakers (PR 10 tentpole)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import permkernels
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    DeadlineExpired,
    EwmaEstimate,
    ShedError,
    current_deadline,
    deadline_scope,
    detach_deadline,
)


def run(coro):
    return asyncio.run(coro)


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert d.remaining() is None
        assert not d.expired

    def test_budget_counts_down(self):
        d = Deadline(60.0)
        assert 0 < d.remaining() <= 60.0
        assert not d.expired

    def test_tiny_budget_expires(self):
        d = Deadline(1e-9)
        assert d.expired
        assert d.remaining() == 0.0

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1)

    def test_scope_binds_and_restores(self):
        d = Deadline(10)
        assert current_deadline() is None
        with deadline_scope(d):
            assert current_deadline() is d
        assert current_deadline() is None

    def test_detach_clears_inside_task(self):
        async def main():
            d = Deadline(10)
            with deadline_scope(d):
                async def fill():
                    detach_deadline()
                    return current_deadline()

                # create_task copies the context: the fill sees the
                # deadline until it detaches, and the detach does not
                # leak back into the requester.
                inner = await asyncio.get_running_loop().create_task(fill())
                assert inner is None
                assert current_deadline() is d

        run(main())

    def test_expired_is_a_timeout_subclass(self):
        assert issubclass(DeadlineExpired, asyncio.TimeoutError)
        assert DeadlineExpired("queue").stage == "queue"


class TestEwma:
    def test_first_observation_seeds(self):
        e = EwmaEstimate()
        assert e.value is None
        e.observe(2.0)
        assert e.value == 2.0

    def test_moves_toward_new_observations(self):
        e = EwmaEstimate(alpha=0.5)
        e.observe(2.0)
        e.observe(4.0)
        assert e.value == pytest.approx(3.0)


class TestAdmission:
    def test_tokens_granted_up_to_max_inflight(self):
        async def main():
            adm = AdmissionController(max_inflight=2, max_queue=0)
            async with adm.admit():
                async with adm.admit():
                    assert adm.inflight == 2
                    with pytest.raises(ShedError) as exc:
                        async with adm.admit():
                            pass
                    assert exc.value.status == 429
                    assert exc.value.reason == "queue_full"
                    assert exc.value.retry_after >= 1
            assert adm.idle()

        run(main())

    def test_queue_hands_token_fifo(self):
        async def main():
            adm = AdmissionController(max_inflight=1, max_queue=4)
            order = []

            async def user(tag, hold):
                async with adm.admit():
                    order.append(tag)
                    await asyncio.sleep(hold)

            await asyncio.gather(user("a", 0.02), user("b", 0), user("c", 0))
            assert order == ["a", "b", "c"]
            assert adm.idle()
            assert adm.admitted_total == 3

        run(main())

    def test_expired_deadline_never_queues(self):
        async def main():
            adm = AdmissionController(max_inflight=1, max_queue=4)
            with deadline_scope(Deadline(1e-9)):
                with pytest.raises(DeadlineExpired):
                    async with adm.admit():
                        pass
            assert adm.idle()

        run(main())

    def test_deadline_expires_while_queued(self):
        async def main():
            registry = MetricsRegistry()
            adm = AdmissionController(max_inflight=1, max_queue=4, registry=registry)

            async def holder():
                async with adm.admit():
                    await asyncio.sleep(0.1)

            task = asyncio.get_running_loop().create_task(holder())
            await asyncio.sleep(0.01)
            with deadline_scope(Deadline(0.02)):
                with pytest.raises(DeadlineExpired):
                    async with adm.admit():
                        pass
            await task
            assert adm.idle()
            expired = registry.counter("serve_deadline_expired_total", at="queue")
            assert expired.value == 1

        run(main())

    def test_health_hook_sheds_before_queueing(self):
        async def main():
            adm = AdmissionController(
                max_inflight=4, max_queue=4, health=lambda: ("draining", 503)
            )
            with pytest.raises(ShedError) as exc:
                async with adm.admit():
                    pass
            assert exc.value.status == 503
            assert exc.value.reason == "draining"

        run(main())

    def test_shed_counter_by_reason(self):
        async def main():
            registry = MetricsRegistry()
            adm = AdmissionController(max_inflight=1, max_queue=0, registry=registry)
            async with adm.admit():
                for _ in range(3):
                    with pytest.raises(ShedError):
                        async with adm.admit():
                            pass
            shed = registry.counter("serve_shed_total", reason="queue_full")
            assert shed.value == 3
            assert adm.shed_total == 3

        run(main())

    def test_pressure_spans_pipe(self):
        async def main():
            adm = AdmissionController(max_inflight=2, max_queue=2)
            assert adm.pressure == 0.0
            async with adm.admit():
                assert adm.pressure == pytest.approx(0.25)

        run(main())

    def test_retry_after_scales_with_queue(self):
        adm = AdmissionController(max_inflight=2, max_queue=8)
        adm.service_time.observe(4.0)
        base = adm.retry_after()
        assert 1 <= base <= 60
        adm._waiters.extend(object() for _ in range(6))  # type: ignore[arg-type]
        assert adm.retry_after() > base
        adm._waiters.clear()

    def test_wait_idle_times_out(self):
        async def main():
            adm = AdmissionController(max_inflight=1, max_queue=0)
            async with adm.admit():
                assert not await adm.wait_idle(0.05)
            assert await adm.wait_idle(0.05)

        run(main())

    def test_cancel_in_grant_tick_does_not_wedge(self):
        """Regression: cancelling a waiter in the tick its token is granted.

        map_request wraps admitted() in asyncio.wait_for, so deadlines
        cancel queued waiters exactly when tokens turn over under
        overload.  The abort path must hand the already-counted token to
        _release without re-incrementing inflight — the old code left a
        phantom holder (inflight=1, nobody holding) that queued every
        later request forever and made drain/wait_idle hang.
        """

        async def main():
            adm = AdmissionController(max_inflight=1, max_queue=4)
            await adm._acquire()  # hold the only token

            async def waiter():
                async with adm.admit():
                    pass

            w = asyncio.get_running_loop().create_task(waiter())
            await asyncio.sleep(0)  # let the waiter queue
            assert adm.waiting == 1
            adm._release()  # grants the waiter's future in this tick...
            w.cancel()  # ...and the cancel lands before it can resume
            with pytest.raises(asyncio.CancelledError):
                await w
            assert adm.inflight == 0
            assert adm.idle()
            # Admission must not be wedged: a fresh request gets the token.
            async with adm.admit():
                assert adm.inflight == 1
            assert adm.idle()
            assert await adm.wait_idle(0.05)

        run(main())


class TestCircuitBreaker:
    def test_threshold_opens_and_cooldown_half_opens(self):
        clock = {"t": 0.0}
        b = CircuitBreaker("x", threshold=2, reset_after=5.0, clock=lambda: clock["t"])
        assert not b.blocked()
        b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert b.blocked()
        clock["t"] = 5.0
        assert not b.blocked()  # half-open: probes flow again
        assert b.state == "half-open"

    def test_half_open_failure_reopens_success_closes(self):
        clock = {"t": 0.0}
        b = CircuitBreaker("x", threshold=2, reset_after=5.0, clock=lambda: clock["t"])
        b.record_failure(); b.record_failure()
        clock["t"] = 5.0
        assert not b.blocked()
        b.record_failure()  # half-open probe failed
        assert b.state == "open"
        assert b.trips == 2
        clock["t"] = 10.0
        assert not b.blocked()
        b.record_success()
        assert b.state == "closed"
        assert not b.blocked()

    def test_hooks_fire_on_edges(self):
        events = []
        clock = {"t": 0.0}
        b = CircuitBreaker(
            "x", threshold=1, reset_after=1.0,
            on_open=lambda: events.append("open"),
            on_close=lambda: events.append("close"),
            clock=lambda: clock["t"],
        )
        b.record_failure()
        clock["t"] = 1.0
        b.blocked()  # open -> half-open runs on_close (probe the backend)
        b.record_success()
        assert events == ["open", "close"]

    def test_state_gauge_exported(self):
        registry = MetricsRegistry()
        b = CircuitBreaker("numba", threshold=1, registry=registry)
        gauge = registry.gauge("serve_breaker_state", backend="numba")
        assert gauge.value == 0
        b.record_failure()
        assert gauge.value == 2

    def test_board_configures_hooks_and_counts_trips(self):
        board = BreakerBoard(threshold=1, reset_after=1.0)
        fired = []
        board.configure("numba", on_open=lambda: fired.append("numba"))
        board.get("numba").record_failure()
        board.get("cc").record_failure()
        assert fired == ["numba"]
        assert board.trips == 2
        snap = board.snapshot()
        assert snap["numba"]["state"] == "open"


class TestBackendPin:
    def test_pin_overrides_auto_and_unpins(self):
        natural = permkernels.resolve_backend()
        try:
            permkernels.pin_backend("numpy")
            assert permkernels.resolve_backend() == "numpy"
        finally:
            permkernels.pin_backend(None)
        assert permkernels.resolve_backend() == natural

    def test_force_wins_over_pin(self):
        try:
            permkernels.pin_backend("numpy")
            with permkernels.force_backend("reference"):
                assert permkernels.resolve_backend() == "reference"
            assert permkernels.resolve_backend() == "numpy"
        finally:
            permkernels.pin_backend(None)

    def test_unknown_pin_rejected(self):
        with pytest.raises(ValueError):
            permkernels.pin_backend("fortran")
