"""Fixtures for the mapping-service suite: a live daemon on a loopback port."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.service.app import MappingService, serve


class ServiceClient:
    """Tiny blocking HTTP client bound to one running service."""

    def __init__(self, service: MappingService, port: int) -> None:
        self.service = service
        self.port = port

    def request_full(self, method: str, path: str, doc=None, timeout: float = 60.0):
        """``(status, headers, payload)`` — headers for Retry-After checks."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        body = None if doc is None else json.dumps(doc)
        conn.request(method, path, body, {"Content-Type": "application/json"})
        resp = conn.getresponse()
        raw = resp.read()
        conn.close()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        ctype = headers.get("content-type", "")
        payload = json.loads(raw) if ctype.startswith("application/json") else raw.decode()
        return resp.status, headers, payload

    def request(self, method: str, path: str, doc=None, timeout: float = 60.0):
        status, _headers, payload = self.request_full(method, path, doc, timeout)
        return status, payload

    def post(self, path: str, doc=None, **kw):
        return self.request("POST", path, doc, **kw)

    def get(self, path: str, **kw):
        return self.request("GET", path, **kw)

    def map(self, doc, **kw):
        """POST /map asserting success; returns the response document."""
        status, payload = self.post("/map", doc, **kw)
        assert status == 200, payload
        return payload


@pytest.fixture
def make_service():
    """Factory for a live service; every instance is torn down at exit."""
    clients: list[tuple[ServiceClient, threading.Thread, asyncio.AbstractEventLoop]] = []

    def factory(**config) -> ServiceClient:
        service = MappingService(**config)
        # The fixture bypasses _serve_until_stopped (no kernel warmup), so
        # readiness is declared here; tests of the starting state build
        # their own service.
        service.mark_ready()
        started = threading.Event()
        holder: dict = {}

        async def main() -> None:
            server, port, stop = await serve(service, "127.0.0.1", 0)
            holder["port"] = port
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = stop
            started.set()
            try:
                await stop.wait()
            finally:
                server.close()
                await server.wait_closed()

        thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
        thread.start()
        assert started.wait(10), "service did not start"
        client = ServiceClient(service, holder["port"])
        clients.append((client, thread, holder))
        return client

    yield factory

    for _client, thread, holder in clients:
        loop, stop = holder["loop"], holder["stop"]
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass
        thread.join(10)


@pytest.fixture
def client(make_service) -> ServiceClient:
    """One default-configuration live service."""
    return make_service()


@pytest.fixture
def spec2():
    """A small fixed two-app problem spec on a 4x4 mesh."""
    return {
        "mesh": 4,
        "apps": [
            {
                "name": "heavy",
                "cache_rates": [2.0, 1.5, 1.0, 0.5],
                "mem_rates": [0.4, 0.3, 0.2, 0.1],
            },
            {
                "name": "light",
                "cache_rates": [0.8, 0.6],
                "mem_rates": [0.2, 0.05],
            },
        ],
    }
