"""Service tracing: span topology, flight recorder, determinism."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.traceio import TraceFile, spans_by_trace, validate_trace


def sim_spec(spec2, seed: int = 0) -> dict:
    return {
        **spec2,
        "simulate": True,
        "sim": {"warmup": 10, "measure": 50, "seed": seed},
    }


def trace_stream(service) -> str:
    """The service tracer's JSONL content as one string."""
    tracer = service.tracer
    objs = [tracer.header(), *tracer.events(), tracer.footer()]
    return "\n".join(json.dumps(o, sort_keys=True) for o in objs)


def span_groups(service):
    tracer = service.tracer
    trace = TraceFile(
        header=tracer.header(), events=list(tracer.events()), footer=tracer.footer()
    )
    assert validate_trace(trace) == []
    return spans_by_trace(trace)


@pytest.fixture
def traced(make_service):
    return make_service(trace=True, trace_clock="logical", batch_window=0.01)


class TestFreshDaemonScrape:
    def test_hit_ratio_is_zero_not_nan_before_any_request(self, make_service):
        """A scrape racing the first request must parse as a number."""
        client = make_service()
        status, text = client.get("/metrics")
        assert status == 200
        [line] = [
            l for l in text.splitlines() if l.startswith("serve_cache_hit_ratio ")
        ]
        assert line.split()[1] == "0"
        assert "nan" not in text.lower()

    def test_traced_daemon_scrape_is_well_formed(self, traced):
        status, text = traced.get("/metrics")
        assert status == 200
        for line in text.splitlines():
            assert line == "" or line.startswith("#") or " " in line


class TestSpanTopology:
    def test_request_spans_nest_solver_under_worker(self, traced, spec2):
        traced.map(dict(spec2))
        groups = span_groups(traced.service)
        spans = {s["name"]: s for s in groups[0]}
        root = spans["serve.request"]
        assert root["parent_span"] == -1
        assert root["attrs"]["cache"] == "miss"
        assert spans["canonicalize"]["parent_span"] == root["span_id"]
        assert spans["worker.solve"]["parent_span"] == root["span_id"]
        for phase in ("sss.sort", "sss.select", "sss.swap", "sss.polish"):
            assert spans[phase]["parent_span"] == spans["worker.solve"]["span_id"]
        assert spans["worker.bounds"]["parent_span"] == root["span_id"]

    def test_cache_hit_request_skips_the_solver(self, traced, spec2):
        traced.map(dict(spec2))
        traced.map(dict(spec2))
        groups = span_groups(traced.service)
        hit_names = {s["name"] for s in groups[1]}
        assert "worker.solve" not in hit_names
        [lookup] = [s for s in groups[1] if s["name"] == "cache.lookup"]
        assert lookup["attrs"]["outcome"] == "hit"

    def test_simulation_request_spans_reach_the_engine(self, traced, spec2):
        traced.map(sim_spec(spec2))
        groups = span_groups(traced.service)
        spans = {s["name"]: s for s in groups[0]}
        enqueue = spans["batch.enqueue"]
        engine = spans["engine.run_batch"]
        assert engine["parent_span"] == enqueue["span_id"]
        assert engine["attrs"]["coalesced"] == [0]
        assert spans["serve.request"]["attrs"]["batch_occupancy"] == 1

    def test_coalesced_burst_shares_one_engine_span(self, make_service, spec2):
        import concurrent.futures

        client = make_service(trace=True, trace_clock="logical", batch_window=0.25)
        # distinct sim seeds are distinct cache entries, but the same
        # mesh/windows, so they legally share one run_batch call
        docs = [sim_spec(spec2, seed=k) for k in range(3)]
        with concurrent.futures.ThreadPoolExecutor(3) as pool:
            futures = [pool.submit(client.map, doc) for doc in docs]
            for f in futures:
                f.result()
        groups = span_groups(client.service)
        engines = [
            s for g in groups.values() for s in g if s["name"] == "engine.run_batch"
        ]
        assert len(engines) == 1, "concurrent sims must share one run_batch call"
        assert sorted(engines[0]["attrs"]["coalesced"]) == sorted(groups)
        for spans in groups.values():
            root = next(s for s in spans if s["parent_span"] == -1)
            assert root["attrs"]["batch_occupancy"] == 3


class TestFlightRecorder:
    def test_debug_requests_dumps_completed_records(self, traced, spec2):
        traced.map(dict(spec2))
        traced.map(dict(spec2))
        status, dump = traced.get("/debug/requests")
        assert status == 200
        assert dump["schema"] == "repro-serve-requests"
        assert dump["enabled"] is True
        assert dump["recorded"] == 2
        kinds = [r["cache"] for r in dump["requests"]]
        assert kinds == ["miss", "hit"]
        first = dump["requests"][0]
        assert first["status"] == 200
        assert first["retries"] == 0
        assert first["duration_us"] > 0
        assert any(s["name"] == "worker.solve" for s in first["spans"])

    def test_bad_request_is_recorded_with_its_error(self, traced):
        status, payload = traced.post("/map", {"apps": []})
        assert status == 400
        _, dump = traced.get("/debug/requests")
        [record] = dump["requests"]
        assert record["status"] == 400
        assert record["error"] == payload["error"]

    def test_5xx_is_recorded_and_logged(self, make_service, spec2, caplog):
        def broken_runner(*args, **kwargs):
            raise RuntimeError("engine on fire")

        client = make_service(
            trace=True, trace_clock="logical", batch_window=0.01,
            batch_runner=broken_runner,
        )
        with caplog.at_level(logging.ERROR, logger="repro.serve"):
            status, payload = client.post("/map", sim_spec(spec2))
        assert status == 500
        assert "engine on fire" in payload["error"]
        _, dump = client.get("/debug/requests")
        [record] = dump["requests"]
        assert record["status"] == 500
        assert "engine on fire" in record["error"]
        logged = [r for r in caplog.records if "request failed" in r.getMessage()]
        assert logged, "5xx must dump the flight record to the error log"
        assert "trace=0" in logged[0].getMessage()

    def test_ring_keeps_only_the_last_n(self, make_service, spec2):
        client = make_service(
            trace=True, trace_clock="logical", flight_recorder=2
        )
        for _ in range(4):
            client.map(dict(spec2))
        _, dump = client.get("/debug/requests")
        assert dump["capacity"] == 2
        assert dump["recorded"] == 4
        assert dump["dropped"] == 2
        assert [r["trace_id"] for r in dump["requests"]] == [2, 3]

    def test_untraced_daemon_reports_disabled(self, make_service, spec2):
        client = make_service()
        client.map(dict(spec2))
        status, dump = client.get("/debug/requests")
        assert status == 200
        assert dump["enabled"] is False
        assert dump["requests"] == []


class TestDeterminism:
    def test_same_burst_produces_byte_identical_trace_jsonl(self, make_service, spec2):
        streams = []
        for _ in range(2):
            client = make_service(trace=True, trace_clock="logical")
            client.map(dict(spec2))
            client.map(dict(spec2))
            client.map(sim_spec(spec2))
            streams.append(trace_stream(client.service))
        assert streams[0] == streams[1]

    def test_responses_are_identical_with_tracing_on_and_off(
        self, make_service, spec2
    ):
        plain = make_service()
        traced = make_service(trace=True, trace_clock="logical")
        doc = sim_spec(spec2)
        assert traced.map(dict(doc)) == plain.map(dict(doc))
        assert traced.map(dict(spec2)) == plain.map(dict(spec2))


class TestServeReportCLI:
    def test_serve_report_renders_a_dump(self, traced, spec2, tmp_path, capsys):
        from repro.cli import main

        traced.map(dict(spec2))
        traced.map(dict(spec2))
        _, dump = traced.get("/debug/requests")
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(dump))
        assert main(["trace", "serve-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 recorded requests" in out
        assert "worker.solve" in out

    def test_span_trace_file_report_and_chrome_export(
        self, traced, spec2, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.obs.exporters import write_trace_jsonl

        traced.map(dict(spec2))
        path = write_trace_jsonl(traced.service.tracer, tmp_path / "spans.jsonl")
        chrome = tmp_path / "chrome.json"
        assert main(
            ["trace", str(path), "--validate", "--chrome", str(chrome)]
        ) == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "serve.request" in out
        doc = json.loads(chrome.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
