"""Property tests of the canonicalization layer (ISSUE satellite: hypothesis).

The cache is only sound if canonical identity means mathematical
identity: every relabeling of a problem must collapse to one
fingerprint, and every materially different problem must not.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.canonical import (
    RATE_DECIMALS,
    canonicalize,
    quantize_rate,
)

QUANTUM = 10.0 ** (-RATE_DECIMALS)

# Rates on a coarse grid so quantization is exact and perturbations are
# unambiguous; shapes stay tiny (the properties are label-level, not
# scale-level).
rate = st.integers(min_value=0, max_value=2000).map(lambda k: k * 1e-3)
app = st.lists(st.tuples(rate, rate), min_size=1, max_size=5)


def spec_of(apps, mesh=6, names=None):
    return {
        "mesh": mesh,
        "apps": [
            {
                "name": (names[i] if names else f"a{i}"),
                "cache_rates": [p[0] for p in pairs],
                "mem_rates": [p[1] for p in pairs],
            }
            for i, pairs in enumerate(apps)
        ],
    }


specs = st.lists(app, min_size=1, max_size=4).filter(
    lambda apps: sum(len(a) for a in apps) <= 36
)


class TestRelabelInvariance:
    @given(apps=specs, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_app_and_thread_relabeling_is_identity(self, apps, data):
        """Shuffled apps, shuffled threads, fresh names: same fingerprint."""
        base = canonicalize(spec_of(apps))

        app_perm = data.draw(st.permutations(range(len(apps))))
        shuffled = []
        for i in app_perm:
            thread_perm = data.draw(st.permutations(range(len(apps[i]))))
            shuffled.append([apps[i][j] for j in thread_perm])
        relabeled = canonicalize(spec_of(shuffled, names=[f"x{i}" for i in range(len(apps))]))

        assert relabeled.problem == base.problem
        assert relabeled.problem.fingerprint == base.problem.fingerprint

    @given(apps=specs)
    @settings(max_examples=60, deadline=None)
    def test_subquantum_noise_shares_the_entry(self, apps):
        """Noise far below the quantum never splits the cache entry."""
        noisy = [
            [(c + 1e-13, m - (1e-13 if m > 0 else 0)) for c, m in pairs]
            for pairs in apps
        ]
        assert (
            canonicalize(spec_of(noisy)).problem.fingerprint
            == canonicalize(spec_of(apps)).problem.fingerprint
        )

    @given(apps=specs, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_perturbation_at_or_above_quantum_never_collides(self, apps, data):
        """A rate moved by >= the quantum always changes the fingerprint."""
        base = canonicalize(spec_of(apps))
        i = data.draw(st.integers(0, len(apps) - 1))
        j = data.draw(st.integers(0, len(apps[i]) - 1))
        delta = data.draw(st.sampled_from([QUANTUM, 3 * QUANTUM, 1e-3, 0.5]))
        c, m = apps[i][j]
        perturbed = [list(pairs) for pairs in apps]
        perturbed[i][j] = (c + delta, m)
        assert (
            canonicalize(spec_of(perturbed)).problem.fingerprint
            != base.problem.fingerprint
        )


class TestRoundTrip:
    @given(apps=specs)
    @settings(max_examples=60, deadline=None)
    def test_serialize_canonicalize_is_idempotent(self, apps):
        """canonicalize(as_spec(canonicalize(x))) is the identity."""
        once = canonicalize(spec_of(apps))
        twice = canonicalize(once.problem.as_spec())
        assert twice.problem == once.problem
        # The canonical spec is already in canonical order.
        assert twice.app_order == tuple(range(once.n_apps))
        assert all(
            order == tuple(range(len(order))) for order in twice.thread_orders
        )

    @given(apps=specs, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_permutation_translation_round_trips(self, apps, data):
        """to-canonical then from-canonical returns the original labels."""
        canon = canonicalize(spec_of(apps))
        n = canon.problem.n_threads
        perm = np.array(data.draw(st.permutations(range(n))), dtype=np.int64)
        assert canon.perm_from_canonical(canon.perm_to_canonical(perm)) == [
            int(t) for t in perm
        ]
        values = list(range(canon.n_apps))
        assert canon.by_app_from_canonical(canon.by_app_to_canonical(values)) == values


class TestValidation:
    def test_quantize_rate_collapses_negative_zero(self):
        assert str(quantize_rate(-0.0)) == "0.0"

    @pytest.mark.parametrize(
        "spec",
        [
            {"mesh": 4, "apps": []},
            {"mesh": 0, "apps": [{"cache_rates": [1], "mem_rates": [1]}]},
            {"mesh": 4, "apps": [{"cache_rates": [1, 2], "mem_rates": [1]}]},
            {"mesh": 4, "apps": [{"cache_rates": [-1.0], "mem_rates": [0.0]}]},
            {"mesh": 4, "apps": [{"cache_rates": [float("nan")], "mem_rates": [0.0]}]},
            {"mesh": 2, "apps": [{"cache_rates": [1] * 5, "mem_rates": [1] * 5}]},
            {"mesh": 4, "params": {"bogus": 1}, "apps": [{"cache_rates": [1], "mem_rates": [1]}]},
        ],
    )
    def test_malformed_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            canonicalize(spec)

    def test_fingerprint_matches_ledger_scheme(self):
        """Cache keys reuse the PR 5 run-ledger fingerprint format."""
        canon = canonicalize({"mesh": 4, "apps": [{"cache_rates": [1.0], "mem_rates": [0.5]}]})
        fp = canon.problem.fingerprint
        assert len(fp) == 16 and int(fp, 16) >= 0
