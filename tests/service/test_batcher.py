"""Concurrency suite for the simulation micro-batcher (ISSUE satellite).

Covers the three contract points: concurrent requests coalesce into one
``run_batch`` call with results identical to serial runs; group keys
keep incompatible requests apart; a wedged worker trips the supervision
policy without stalling unrelated requests.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.latency import LatencyParams, Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.registry import ALGORITHMS
from repro.core.workload import Application, Workload
from repro.experiments.resilience import FailureBudgetExceeded
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic
from repro.obs.metrics import MetricsRegistry
from repro.service.batcher import SimulationBatcher
from repro.service.workers import WorkerPool


def run(coro):
    return asyncio.run(coro)


class FakeMesh:
    rows, cols = 4, 4


def recording_runner(record):
    """A runner that logs batch compositions and returns marker results."""

    def runner(mesh, traffics, *, warmup, measure):
        record.append(list(traffics))
        return [("result", t) for t in traffics]

    return runner


class TestCoalescing:
    def make(self, record, **kw):
        pool = WorkerPool(2, backoff=0.0)
        kw.setdefault("window", 0.02)
        return SimulationBatcher(pool, runner=recording_runner(record), **kw)

    def test_concurrent_requests_share_one_batch(self):
        record = []
        batcher = self.make(record)

        async def scenario():
            return await asyncio.gather(
                *[
                    batcher.submit(FakeMesh, f"t{i}", warmup=10, measure=50)
                    for i in range(6)
                ]
            )

        results = run(scenario())
        assert len(record) == 1 and len(record[0]) == 6
        # Each requester got the result of ITS traffic, in submit order.
        assert results == [("result", f"t{i}") for i in range(6)]
        assert batcher.batches_run == 1
        assert batcher.requests_batched == 6

    def test_max_batch_flushes_early(self):
        record = []
        batcher = self.make(record, max_batch=2, window=5.0)  # window never fires

        async def scenario():
            tasks = [
                asyncio.ensure_future(batcher.submit(FakeMesh, i, warmup=1, measure=1))
                for i in range(5)
            ]
            await asyncio.sleep(0.01)
            await batcher.drain()
            return await asyncio.gather(*tasks)

        results = run(scenario())
        assert [len(b) for b in record] == [2, 2, 1]
        assert results == [("result", i) for i in range(5)]

    def test_incompatible_requests_never_share_a_batch(self):
        """Different warmup/measure (or mesh) are distinct run_batch groups."""
        record = []
        batcher = self.make(record)

        class OtherMesh:
            rows, cols = 2, 8

        async def scenario():
            await asyncio.gather(
                batcher.submit(FakeMesh, "a", warmup=10, measure=50),
                batcher.submit(FakeMesh, "b", warmup=10, measure=99),
                batcher.submit(OtherMesh, "c", warmup=10, measure=50),
                batcher.submit(FakeMesh, "d", warmup=10, measure=50),
            )

        run(scenario())
        groups = sorted(tuple(b) for b in record)
        assert groups == [("a", "d"), ("b",), ("c",)]

    def test_cancelled_requests_are_dropped_at_flush(self):
        record = []
        batcher = self.make(record, window=0.02)

        async def scenario():
            keep = asyncio.ensure_future(
                batcher.submit(FakeMesh, "keep", warmup=1, measure=2)
            )
            drop = asyncio.ensure_future(
                batcher.submit(FakeMesh, "drop", warmup=1, measure=2)
            )
            await asyncio.sleep(0)  # both enqueued
            drop.cancel()
            result = await keep
            with pytest.raises(asyncio.CancelledError):
                await drop
            return result

        assert run(scenario()) == ("result", "keep")
        assert record == [["keep"]]

    def test_batch_occupancy_metric_is_observed(self):
        registry = MetricsRegistry()
        record = []
        pool = WorkerPool(2, backoff=0.0)
        batcher = SimulationBatcher(
            pool, window=0.02, registry=registry, runner=recording_runner(record)
        )

        async def scenario():
            await asyncio.gather(
                *[batcher.submit(FakeMesh, i, warmup=1, measure=1) for i in range(3)]
            )

        run(scenario())
        hist = registry.histogram(
            "serve_batch_occupancy", bounds=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        assert hist.total == 1 and hist.sum == 3.0


class TestSupervision:
    def test_wedged_runner_trips_budget_without_stalling_others(self):
        """ISSUE satellite: the chaos pattern at the batcher level."""
        release = threading.Event()
        record = []

        def runner(mesh, traffics, *, warmup, measure):
            if "wedge" in traffics:
                release.wait(5)
            record.append(list(traffics))
            return [("ok", t) for t in traffics]

        pool = WorkerPool(2, timeout=0.1, retries=0, backoff=0.0, failure_budget=1)
        batcher = SimulationBatcher(pool, window=0.005, runner=runner)

        async def scenario():
            wedge = asyncio.ensure_future(
                batcher.submit(FakeMesh, "wedge", warmup=1, measure=1)
            )
            await asyncio.sleep(0.02)  # let the wedged batch flush alone
            healthy = await batcher.submit(FakeMesh, "fine", warmup=9, measure=9)
            with pytest.raises(asyncio.TimeoutError):
                await wedge
            # That consumed the whole budget (1): the next failure
            # surfaces as FailureBudgetExceeded to its requesters.
            bad = asyncio.ensure_future(
                batcher.submit(FakeMesh, "wedge", warmup=1, measure=1)
            )
            with pytest.raises(FailureBudgetExceeded):
                await bad
            return healthy

        try:
            assert run(scenario()) == ("ok", "fine")
        finally:
            release.set()
        assert pool.report.pool_replacements >= 1
        assert ["fine"] in record

    def test_runner_error_is_relayed_to_every_member(self):
        def runner(mesh, traffics, *, warmup, measure):
            raise RuntimeError("engine exploded")

        pool = WorkerPool(1, retries=0, backoff=0.0)
        batcher = SimulationBatcher(pool, window=0.005, runner=runner)

        async def scenario():
            futures = [
                asyncio.ensure_future(batcher.submit(FakeMesh, i, warmup=1, measure=1))
                for i in range(3)
            ]
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)

        run(scenario())


class TestBitIdenticalToSerial:
    """Concurrent batched simulation == serial single simulation, bytes-out."""

    def make_traffic(self, seed: int):
        model = MeshLatencyModel(Mesh.square(4), LatencyParams())
        # rates high enough that a short measure window delivers packets
        apps = (
            Application("a", [40.0, 30.0, 20.0], [12.0, 8.0, 4.0]),
            Application("b", [24.0, 16.0], [6.0, 2.0]),
        )
        instance = OBMInstance(model, Workload(apps, name=f"w{seed}"))
        mapping = ALGORITHMS["sss"](instance).mapping
        return instance, mapping

    def test_concurrent_clients_get_serial_results(self):
        instance, mapping = self.make_traffic(0)
        seeds = [0, 1, 2, 3]
        pool = WorkerPool(2, backoff=0.0)
        batcher = SimulationBatcher(pool, window=0.05)

        async def scenario():
            return await asyncio.gather(
                *[
                    batcher.submit(
                        instance.mesh,
                        MappedWorkloadTraffic(instance, mapping, seed=s),
                        warmup=50,
                        measure=200,
                    )
                    for s in seeds
                ]
            )

        batched = run(scenario())
        assert batcher.batches_run == 1  # they really shared one run_batch

        for seed, result in zip(seeds, batched):
            serial = NoCSimulator(
                instance.mesh,
                MappedWorkloadTraffic(instance, mapping, seed=seed),
                engine="vector",
            ).run(warmup=50, measure=200)
            from repro.service.app import measured_payload

            assert measured_payload(result) == measured_payload(serial)
            assert result.counts == serial.counts
