"""Golden end-to-end: service responses == direct engine runs, bit for bit.

For every measured paper configuration C1-C8, a ``POST /map`` with
``simulate`` on must return exactly the bytes a direct
``python -m repro simulate --engine vector`` pipeline produces: same
solver permutation, same evaluation metrics, same measured APLs.  The
comparison is on canonical JSON encodings, so any drift — float noise,
translation bugs, a different RNG-to-thread assignment — fails loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.core.bounds import max_apl_lower_bound
from repro.core.latency import LatencyParams, Mesh, MeshLatencyModel
from repro.core.problem import OBMInstance
from repro.core.registry import ALGORITHMS
from repro.experiments.resilience import json_safe
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic
from repro.workloads.parsec import CONFIG_NAMES, parsec_config

WARMUP, MEASURE, SEED = 100, 400, 0


def canonical_bytes(doc) -> bytes:
    return json.dumps(json_safe(doc), sort_keys=True, separators=(",", ":")).encode()


def reference_response(config: str, algorithm: str = "sss") -> dict:
    """The CLI-equivalent pipeline, without the service in the loop."""
    model = MeshLatencyModel(Mesh.square(8), LatencyParams())
    workload = parsec_config(config, threads_per_app=model.n_tiles // 4)
    instance = OBMInstance(model, workload)
    solved = ALGORITHMS[algorithm](instance)
    lb = max_apl_lower_bound(instance)

    traffic = MappedWorkloadTraffic(instance, solved.mapping, seed=SEED)
    measured = NoCSimulator(instance.mesh, traffic, engine="vector").run(
        warmup=WARMUP, measure=MEASURE
    )

    n_apps = len(workload.applications)
    stats = measured.stats
    apl_by_app = stats.apl_by_app()
    pct_by_app = stats.percentiles_by_app()
    return {
        "algorithm": algorithm,
        "apps": [a.name for a in workload.applications],
        "perm": [int(t) for t in solved.mapping.perm],
        "evaluation": {
            "apls": [float(v) for v in solved.evaluation.apls[:n_apps]],
            "max_apl": solved.evaluation.max_apl,
            "dev_apl": solved.evaluation.dev_apl,
            "g_apl": solved.evaluation.g_apl,
            "min_max_ratio": solved.evaluation.min_max_ratio,
        },
        "bounds": {
            "value": lb.value,
            "mean_bound": lb.mean_bound,
            "per_app_bound": lb.per_app_bound,
            "gap": lb.gap(solved.evaluation.max_apl),
        },
        "measured": {
            "engine": measured.engine,
            "engine_requested": measured.engine_requested,
            "engine_fallback": measured.engine_fallback,
            "cycles": measured.cycles,
            "packets_offered": measured.packets_offered,
            "packets_delivered": measured.packets_delivered,
            "packets_lost": measured.packets_lost,
            "delivery_ratio": measured.delivery_ratio,
            "invariant_checks": measured.invariant_checks,
            "max_apl": stats.max_apl() if apl_by_app else None,
            "dev_apl": stats.dev_apl() if apl_by_app else None,
            "apls": [apl_by_app.get(i) for i in range(n_apps)],
            "percentiles": [pct_by_app.get(i) for i in range(n_apps)],
            "warmup": WARMUP,
            "measure": MEASURE,
            "seed": SEED,
        },
    }


@pytest.mark.parametrize("config", CONFIG_NAMES)
def test_serve_is_bit_identical_to_direct_simulate(client, config):
    doc = client.map(
        {
            "workload": config,
            "mesh": 8,
            "algorithm": "sss",
            "simulate": True,
            "sim": {"warmup": WARMUP, "measure": MEASURE, "seed": SEED},
        },
        timeout=300.0,
    )
    expected = reference_response(config)
    assert canonical_bytes(doc["result"]) == canonical_bytes(expected)


def test_cached_replay_is_also_bit_identical(client):
    """The cached copy of a golden response must be the same bytes too."""
    request = {
        "workload": "C1",
        "mesh": 8,
        "simulate": True,
        "sim": {"warmup": WARMUP, "measure": MEASURE, "seed": SEED},
    }
    first = client.map(request, timeout=300.0)
    second = client.map(request, timeout=300.0)
    assert second["meta"]["cache"] == "hit"
    assert second["meta"]["sim_cache"] == "hit"
    assert canonical_bytes(second["result"]) == canonical_bytes(first["result"])
