"""Supervision tests for the service worker pool (PR 5 semantics, async)."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.experiments.resilience import FailureBudgetExceeded, RunReport
from repro.service.workers import WorkerPool


def run(coro):
    return asyncio.run(coro)


class TestWorkerPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_runs_blocking_callable_off_loop(self):
        pool = WorkerPool(1, backoff=0.0)

        async def scenario():
            return await pool.run(lambda a, b: (a + b, threading.current_thread().name), 2, 3)

        value, thread_name = run(scenario())
        assert value == 5
        assert thread_name == "repro-serve-worker"
        assert pool.report.cells_computed == 1

    def test_retry_then_success_is_accounted(self):
        report = RunReport()
        pool = WorkerPool(1, retries=2, backoff=0.0, report=report)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        assert run(pool.run(flaky)) == "ok"
        assert calls["n"] == 3
        assert report.retries == 2
        assert report.cells_computed == 1
        assert report.cells_failed == 0
        assert report.failure_causes == ["RuntimeError: transient"] * 2

    def test_exhausted_retries_reraise_the_last_error(self):
        pool = WorkerPool(1, retries=1, backoff=0.0)

        def always():
            raise KeyError("nope")

        with pytest.raises(KeyError):
            run(pool.run(always))
        assert pool.report.cells_failed == 1

    def test_failure_budget_trips_across_tasks(self):
        pool = WorkerPool(1, retries=0, backoff=0.0, failure_budget=1)

        def boom():
            raise RuntimeError("sick backend")

        async def scenario():
            with pytest.raises(RuntimeError):
                await pool.run(boom)
            # The budget (1) is now spent: the next failure raises the
            # budget error instead of the task's own.
            with pytest.raises(FailureBudgetExceeded):
                await pool.run(boom)

        run(scenario())

    def test_timeout_abandons_the_wedged_thread(self):
        pool = WorkerPool(2, timeout=0.05, retries=0, backoff=0.0)
        release = threading.Event()

        def wedged():
            release.wait(5)
            return "late"

        async def scenario():
            with pytest.raises(asyncio.TimeoutError):
                await pool.run(wedged)
            # The slot was reclaimed: unrelated work still flows.
            return await pool.run(lambda: "fresh")

        try:
            assert run(scenario()) == "fresh"
        finally:
            release.set()
        assert pool.report.pool_replacements == 1

    def test_wedged_worker_does_not_stall_unrelated_requests(self):
        """ISSUE satellite: one wedged task, concurrent healthy traffic."""
        pool = WorkerPool(2, timeout=0.2, retries=0, backoff=0.0, failure_budget=None)
        release = threading.Event()

        def wedged():
            release.wait(5)

        async def scenario():
            t0 = time.perf_counter()
            wedge = asyncio.ensure_future(pool.run(wedged))
            healthy = [pool.run(lambda k=k: k * k) for k in range(4)]
            values = await asyncio.gather(*healthy)
            healthy_done = time.perf_counter() - t0
            with pytest.raises(asyncio.TimeoutError):
                await wedge
            return values, healthy_done

        try:
            values, healthy_done = run(scenario())
        finally:
            release.set()
        assert values == [0, 1, 4, 9]
        # Healthy tasks shared the second slot instead of queueing behind
        # the wedged one for its full timeout.
        assert healthy_done < 0.2

    def test_concurrency_is_bounded_by_workers(self):
        pool = WorkerPool(2, backoff=0.0)
        active = []
        peak = []
        lock = threading.Lock()

        def task():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.02)
            with lock:
                active.pop()

        async def scenario():
            await asyncio.gather(*[pool.run(task) for _ in range(8)])

        run(scenario())
        assert max(peak) <= 2
        assert pool.report.cells_computed == 8
