"""Endpoint, caching, and fallback-surfacing tests for the service.

Covers the HTTP layer (via the live-daemon fixture) and the
``MappingService`` core (driven directly under ``asyncio.run`` where the
test needs deterministic concurrency).
"""

from __future__ import annotations

import asyncio
import json
import logging

import pytest

from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import MappedWorkloadTraffic
from repro.core.latency import LatencyParams, Mesh, MeshLatencyModel
from repro.core.problem import Mapping, OBMInstance
from repro.core.workload import Application, Workload
from repro.service.app import MappingService


SIM_FAST = {"warmup": 50, "measure": 400}


def relabel(spec):
    """The same problem spelled differently: apps and threads reordered."""
    a0, a1 = spec["apps"]
    flip = lambda app, order: {  # noqa: E731
        "name": app["name"] + "x",
        "cache_rates": [app["cache_rates"][j] for j in order],
        "mem_rates": [app["mem_rates"][j] for j in order],
    }
    return {
        **spec,
        "apps": [flip(a1, [1, 0]), flip(a0, [2, 0, 3, 1])],
    }


class TestHTTPEndpoints:
    def test_map_solves_and_reports_meta(self, client, spec2):
        doc = client.map(spec2)
        result, meta = doc["result"], doc["meta"]
        assert result["algorithm"] == "sss"
        assert result["apps"] == ["heavy", "light"]
        # 6 real threads placed on 6 distinct tiles of the 16-tile mesh
        assert len(set(result["perm"])) == 6
        assert all(0 <= t < 16 for t in result["perm"])
        assert len(result["evaluation"]["apls"]) == 2
        assert result["bounds"]["value"] <= result["evaluation"]["max_apl"]
        assert meta["cache"] == "miss"
        assert len(meta["fingerprint"]) == 16

    def test_health_endpoint(self, client, spec2):
        client.map(spec2)
        status, health = client.get("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["cache"]["entries"] == 1
        assert health["report"]["cells_computed"] == 1

    def test_metrics_endpoint_exports_prometheus(self, client, spec2):
        client.map(spec2)
        client.map(spec2)
        status, text = client.get("/metrics")
        assert status == 200
        lines = text.splitlines()
        assert 'serve_requests_total{endpoint="map",status="200"} 2' in lines
        assert "serve_cache_hits_total 1" in lines
        ratios = [l for l in lines if l.startswith("serve_cache_hit_ratio ")]
        assert ratios and float(ratios[0].split()[-1]) > 0.0
        assert any(l.startswith("serve_request_seconds_bucket") for l in lines)

    def test_unknown_route_is_404(self, client):
        status, payload = client.get("/nope")
        assert status == 404

    def test_invalid_json_is_400(self, client):
        status, payload = client.post("/map", doc=None)
        assert status == 400

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: {**s, "algorithm": "bogus"},
            lambda s: {**s, "workload": "C1"},  # both workload and apps
            lambda s: {**s, "workload": "C99", "apps": None},
            lambda s: {**s, "sim": {"engine": "warp"}},
            lambda s: {**s, "sim": {"bogus": 1}},
            lambda s: {**s, "sim": {"measure": 0}},
            lambda s: {**s, "timeout": -1},
            lambda s: {**s, "apps": []},
            lambda s: {**s, "mesh": 1},  # 6 threads on 1 tile
        ],
    )
    def test_malformed_requests_are_400(self, client, spec2, mutate):
        status, payload = client.post("/map", mutate(spec2))
        assert status == 400, payload
        assert "error" in payload

    def test_named_workload_expands_like_the_cli(self, client):
        doc = client.map({"workload": "C1", "mesh": 8})
        assert len(doc["result"]["apps"]) == 4
        assert sorted(doc["result"]["perm"]) == list(range(64))

    def test_shutdown_is_acknowledged(self, make_service):
        client = make_service()
        status, payload = client.post("/shutdown")
        assert status == 200
        assert payload == {"status": "draining", "inflight": 0}


class TestCacheSemantics:
    def test_duplicate_request_hits_the_cache(self, client, spec2):
        first = client.map(spec2)
        second = client.map(spec2)
        assert second["meta"]["cache"] == "hit"
        assert second["result"] == first["result"]
        assert client.service.cache.hits == 1

    def test_relabeled_request_shares_the_entry_with_translated_results(
        self, client, spec2
    ):
        base = client.map(spec2)
        other = client.map(relabel(spec2))
        assert other["meta"]["cache"] == "hit"
        assert other["meta"]["fingerprint"] == base["meta"]["fingerprint"]
        # Per-app values follow the requester's app order...
        assert other["result"]["evaluation"]["apls"] == base["result"]["evaluation"]["apls"][::-1]
        # ...and the permutation follows the requester's thread labels:
        # app "light" threads [0, 1] come first, reordered [1, 0]; then
        # "heavy" threads in order [2, 0, 3, 1].
        b, o = base["result"]["perm"], other["result"]["perm"]
        assert o == [b[5], b[4], b[2], b[0], b[3], b[1]]
        # Scalar metrics are label-free and identical.
        assert other["result"]["evaluation"]["max_apl"] == base["result"]["evaluation"]["max_apl"]
        assert other["result"]["bounds"] == base["result"]["bounds"]

    def test_parameter_change_is_a_different_entry(self, client, spec2):
        base = client.map(spec2)
        changed = json.loads(json.dumps(spec2))
        changed["apps"][0]["cache_rates"][0] += 1e-3
        other = client.map(changed)
        assert other["meta"]["cache"] == "miss"
        assert other["meta"]["fingerprint"] != base["meta"]["fingerprint"]

    def test_bounds_flag_never_serves_stale_entries(self, client, spec2):
        """A bounds=False entry must not satisfy a bounds=True request."""
        without = client.map({**spec2, "bounds": False})
        assert without["result"]["bounds"] is None
        with_bounds = client.map({**spec2, "bounds": True})
        assert with_bounds["meta"]["cache"] == "miss"
        assert with_bounds["result"]["bounds"]["value"] > 0

    def test_sim_knob_change_is_a_different_sim_entry(self, client, spec2):
        a = client.map({**spec2, "simulate": True, "sim": SIM_FAST})
        b = client.map({**spec2, "simulate": True, "sim": SIM_FAST})
        c = client.map({**spec2, "simulate": True, "sim": {**SIM_FAST, "seed": 7}})
        assert a["meta"]["sim_cache"] == "miss"
        assert b["meta"]["sim_cache"] == "hit"
        assert b["result"] == a["result"]
        assert c["meta"]["sim_cache"] == "miss"

    def test_concurrent_duplicates_coalesce_into_one_solve(self, spec2):
        service = MappingService(workers=2)

        async def scenario():
            return await asyncio.gather(
                *[service.map_request(dict(spec2)) for _ in range(5)]
            )

        docs = asyncio.run(scenario())
        kinds = sorted(d["meta"]["cache"] for d in docs)
        assert kinds == ["coalesced"] * 4 + ["miss"]
        assert len({json.dumps(d["result"], sort_keys=True) for d in docs}) == 1
        # One solve total, and the hit-ratio gauge counts the coalesced hits.
        assert service.report.cells_computed == 1
        ratio = service.registry.gauge("serve_cache_hit_ratio").value
        assert ratio == pytest.approx(4 / 5)

    def test_request_timeout_is_504(self, client, spec2):
        status, payload = client.post(
            "/map", {**spec2, "mesh": 10, "timeout": 1e-6}
        )
        assert status == 504
        assert "timed out" in payload["error"]


class TestFallbackSurfacing:
    """ISSUE satellite 3: engine auto-fallback must reach the payload."""

    def test_service_surfaces_invariant_fallback(self, client, spec2, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.noc"):
            doc = client.map(
                {
                    **spec2,
                    "simulate": True,
                    "sim": {**SIM_FAST, "engine": "vector", "invariants": True},
                }
            )
        measured = doc["result"]["measured"]
        assert measured["engine"] == "fastpath"
        assert measured["engine_requested"] == "vector"
        assert measured["engine_fallback"] == "invariant checking attached"
        assert (
            "vector engine unavailable: invariant checking attached; "
            "falling back to fastpath" in caplog.text
        )

    def test_no_fallback_on_the_batched_path(self, client, spec2):
        doc = client.map({**spec2, "simulate": True, "sim": SIM_FAST})
        measured = doc["result"]["measured"]
        assert measured["engine"] == "vector"
        assert measured["engine_requested"] == "vector"
        assert measured["engine_fallback"] is None

    def test_observability_fallback_reason_string_is_pinned(self, caplog):
        """Regression: the exact logged reason for obs-attached fallback."""
        model = MeshLatencyModel(Mesh.square(2), LatencyParams())
        instance = OBMInstance(
            model, Workload((Application("a", [1.0], [0.5]),), name="w")
        )
        traffic = MappedWorkloadTraffic(
            instance, Mapping([0, 1, 2, 3]), seed=0
        )
        with caplog.at_level(logging.WARNING, logger="repro.noc"):
            sim = NoCSimulator(instance.mesh, traffic, obs=True, engine="vector")
        assert sim.engine == "fastpath"
        assert sim.engine_requested == "vector"
        assert sim.engine_fallback == (
            "observability attached (tracing/sampling needs per-event hooks)"
        )
        assert (
            "vector engine unavailable: observability attached "
            "(tracing/sampling needs per-event hooks); falling back to fastpath"
            in caplog.text
        )
        result = sim.run(warmup=10, measure=50)
        assert result.engine == "fastpath"
        assert result.engine_requested == "vector"
        assert result.engine_fallback == sim.engine_fallback
