"""Unit tests of the bounded LRU cache and the latency-model memo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.cache import LRUCache, ModelMemo


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_put_get_and_miss_accounting(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh 'a' so 'b' is the cold entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_existing_key_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_registry_mirrors_counters(self):
        registry = MetricsRegistry()
        cache = LRUCache(1, registry=registry)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)  # evicts 'a'
        snap = {m.name: m for m in registry}
        assert snap["serve_cache_hits_total"].value == 1
        assert snap["serve_cache_misses_total"].value == 1
        assert snap["serve_cache_evictions_total"].value == 1
        assert snap["serve_cache_entries"].value == 1


class TestModelMemo:
    PARAMS = (2.0, 2.0, 4.0, 6.0)

    def test_same_key_returns_the_same_model_object(self):
        memo = ModelMemo(4)
        a = memo.get(4, 4, self.PARAMS)
        b = memo.get(4, 4, self.PARAMS)
        assert a is b
        assert (memo.hits, memo.misses) == (1, 1)

    def test_arrays_are_materialized_inside_the_memo(self):
        memo = ModelMemo(4)
        model = memo.get(4, 4, self.PARAMS)
        # cached_property landed: reading again must not recompute
        assert "tc" in vars(model) and "tm" in vars(model)
        assert model.tc.shape == (16,)
        assert np.all(np.isfinite(model.tc))

    def test_distinct_params_are_distinct_entries(self):
        memo = ModelMemo(4)
        a = memo.get(4, 4, self.PARAMS)
        b = memo.get(4, 4, (2.0, 2.0, 4.0, 7.0))
        c = memo.get(4, 8, self.PARAMS)
        assert a is not b and a is not c
        assert memo.misses == 3

    def test_memo_is_bounded(self):
        memo = ModelMemo(2)
        first = memo.get(2, 2, self.PARAMS)
        memo.get(2, 3, self.PARAMS)
        memo.get(2, 4, self.PARAMS)  # evicts the (2, 2) entry
        again = memo.get(2, 2, self.PARAMS)
        assert again is not first
