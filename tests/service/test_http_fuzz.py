"""Hypothesis fuzz of the HTTP layer: garbage in, structured 4xx out.

Property: no byte sequence a client sends — malformed JSON, broken
headers, hostile request lines, lying content-lengths — may produce a
500, kill the daemon, or yield an unstructured error body.  Every
answered error is a JSON object with an ``"error"`` key; unanswerable
garbage (e.g. a body shorter than its declared length) just closes the
connection.
"""

from __future__ import annotations

import json
import socket

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

FUZZ = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

# latin-1 text with no CR/LF (header-safe); injection itself is tested
# with explicit newlines below.
_line_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=255),
    max_size=64,
)


def raw_roundtrip(port: int, data: bytes, timeout: float = 10.0) -> bytes:
    """One raw TCP exchange; returns whatever the server answered."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(data)
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        chunks = []
        try:
            while True:
                block = sock.recv(65536)
                if not block:
                    break
                chunks.append(block)
        except TimeoutError:
            pass
        return b"".join(chunks)


def response_status(response: bytes) -> int | None:
    if not response:
        return None
    parts = response.split(b"\r\n", 1)[0].decode("latin-1", "replace").split()
    return int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else None


def response_body(response: bytes) -> bytes:
    return response.partition(b"\r\n\r\n")[2]


def post_map(port: int, body: bytes, extra_headers: str = "") -> bytes:
    head = (
        f"POST /map HTTP/1.1\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n{extra_headers}\r\n"
    ).encode("latin-1")
    return raw_roundtrip(port, head + body)


def assert_never_5xx(response: bytes) -> None:
    status = response_status(response)
    if status is None:
        return  # unanswerable garbage: connection closed, daemon alive
    assert status < 500, response[:200]
    if status >= 400:
        payload = json.loads(response_body(response))
        assert isinstance(payload, dict)
        assert "error" in payload
        assert isinstance(payload["error"], str)


class TestBodyFuzz:
    @FUZZ
    @given(body=st.binary(max_size=512))
    def test_arbitrary_bytes_as_map_body(self, client, body):
        assert_never_5xx(post_map(client.port, body))

    @FUZZ
    @given(
        doc=st.recursive(
            st.none() | st.booleans() | st.integers() | st.floats() | st.text(max_size=20),
            lambda inner: st.lists(inner, max_size=4)
            | st.dictionaries(st.text(max_size=10), inner, max_size=4),
            max_leaves=10,
        )
    )
    def test_wellformed_json_wrong_shape(self, client, doc):
        body = json.dumps(doc).encode()
        response = post_map(client.port, body)
        status = response_status(response)
        assert status in (200, 400), response[:200]
        if status == 400:
            payload = json.loads(response_body(response))
            assert "error" in payload

    def test_daemon_survives_the_fuzzing(self, client):
        # Run after-the-fact sanity inside each class: still serving.
        status = response_status(
            raw_roundtrip(client.port, b"GET /healthz HTTP/1.1\r\n\r\n")
        )
        assert status == 200


class TestHeaderFuzz:
    @FUZZ
    @given(name=_line_text, value=_line_text)
    def test_arbitrary_header_lines(self, client, name, value):
        assert_never_5xx(
            post_map(client.port, b"{}", extra_headers=f"{name}:{value}\r\n")
        )

    @FUZZ
    @given(value=_line_text)
    def test_arbitrary_content_length(self, client, value):
        head = (
            f"POST /map HTTP/1.1\r\nContent-Length: {value}\r\n\r\n"
        ).encode("latin-1")
        assert_never_5xx(raw_roundtrip(client.port, head + b"{}"))

    def test_lying_content_length_closes_quietly(self, client):
        head = b"POST /map HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"
        response = raw_roundtrip(client.port, head + b"{}")
        assert response_status(response) is None
        _status, payload = client.get("/healthz")
        assert payload["status"] in ("ok", "degraded")

    def test_negative_content_length_is_400(self, client):
        head = b"POST /map HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        assert response_status(raw_roundtrip(client.port, head)) == 400

    def test_huge_content_length_is_400(self, client):
        head = b"POST /map HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
        assert response_status(raw_roundtrip(client.port, head)) == 400

    def test_too_many_headers_is_400(self, client):
        headers = "".join(f"x-{i}: 1\r\n" for i in range(400))
        data = f"GET /healthz HTTP/1.1\r\n{headers}\r\n".encode()
        assert response_status(raw_roundtrip(client.port, data)) == 400

    def test_overlong_header_line_is_400(self, client):
        data = b"GET /healthz HTTP/1.1\r\nx: " + b"a" * 100_000 + b"\r\n\r\n"
        assert response_status(raw_roundtrip(client.port, data)) == 400


class TestRequestLineFuzz:
    @FUZZ
    @given(line=_line_text)
    def test_arbitrary_request_lines(self, client, line):
        assert_never_5xx(raw_roundtrip(client.port, f"{line}\r\n\r\n".encode("latin-1")))

    @FUZZ
    @given(method=_line_text, path=_line_text)
    def test_arbitrary_method_and_path(self, client, method, path):
        data = f"{method} {path} HTTP/1.1\r\n\r\n".encode("latin-1")
        assert_never_5xx(raw_roundtrip(client.port, data))

    def test_empty_connection_is_ignored(self, client):
        assert raw_roundtrip(client.port, b"") == b""
        _status, payload = client.get("/healthz")
        assert payload["status"] in ("ok", "degraded")
