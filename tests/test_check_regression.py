"""Exit-code semantics of the benchmark-regression guard.

A malformed or missing ``BENCH_perf.json`` must produce a clear skip
message and exit code 2 — never a ``KeyError`` traceback — and must do
so *before* the minutes-long measurement rounds (which is also what
keeps these subprocess tests fast).
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "benchmarks" / "check_regression.py"


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,  # parse failures must not reach the slow measurement
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO,
    )


def _load_module():
    spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBaselineExitCodes:
    def test_missing_file_exits_2(self, tmp_path):
        proc = _run("--bench-json", str(tmp_path / "absent.json"))
        assert proc.returncode == 2
        assert "SKIP" in proc.stdout
        assert "missing" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_invalid_json_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = _run("--bench-json", str(bad))
        assert proc.returncode == 2
        assert "not valid JSON" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_non_object_exits_2(self, tmp_path):
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2, 3]\n")
        proc = _run("--bench-json", str(arr))
        assert proc.returncode == 2
        assert "JSON object" in proc.stdout

    def test_sectionless_baseline_exits_2(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"unrelated": {"x": 1}}))
        proc = _run("--bench-json", str(empty))
        assert proc.returncode == 2
        assert "guarded sections" in proc.stdout


class TestCheckLogic:
    """Drive check() directly with fake measurements (no benchmarking)."""

    MEASURED = {
        "fastpath_seconds": 1.0,
        "vector_seconds": 0.5,
        "vector_speedup": 2.0,
        "soa_batch_per_sim_seconds": 0.2,
        "soa_batch_speedup": 5.0,
        "obs_off_seconds": 1.0,
        "obs_tracing_seconds": 1.5,
        "obs_overhead_ratio": 1.5,
    }

    def test_partial_baseline_skips_missing_quantities(self, capsys):
        mod = _load_module()
        baseline = {"vector_engine": {"single_sim": {"speedup": 2.1}}}
        failures = mod.check(self.MEASURED, baseline, tol=0.30, tol_seconds=0.60)
        assert failures == []
        out = capsys.readouterr().out
        assert out.count("baseline missing) skip") == 3  # fastpath + soa + obs
        assert "vector_engine.single_sim.speedup" in out

    def test_jit_quantity_skips_without_numba_measurement(self, capsys):
        """No jit_batch_speedup in measured (numba absent): the jit guard
        must report a skip, not KeyError, even when a baseline exists."""
        mod = _load_module()
        baseline = {
            "vector_engine": {
                "soa_batch": {"per_sim_speedup": {"batch_32": 5.0}},
                "jit": {"per_sim_speedup": {"batch_32": 7.0}},
            }
        }
        failures = mod.check(self.MEASURED, baseline, tol=0.30, tol_seconds=0.60)
        assert failures == []
        out = capsys.readouterr().out
        assert "vector_engine.jit.speedup.batch_32" in out
        assert "numba not installed" in out
        assert "vector_engine.soa_batch.speedup.batch_32" in out

    def test_regression_detected(self):
        mod = _load_module()
        baseline = {"vector_engine": {"single_sim": {"speedup": 10.0}}}
        failures = mod.check(self.MEASURED, baseline, tol=0.30, tol_seconds=0.60)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_serve_tracing_guard_skips_when_not_measured(self, capsys):
        """MEASURED has no serve_tracing_ratio (serve probe skipped):
        the service guard must report a skip, not KeyError."""
        mod = _load_module()
        failures = mod.check(self.MEASURED, {}, tol=0.30, tol_seconds=0.60)
        assert failures == []
        out = capsys.readouterr().out
        assert "service.obs_overhead.overhead_ratio" in out
        assert "serve probe not measured" in out

    def test_serve_tracing_ratio_regression_detected(self):
        mod = _load_module()
        measured = {**self.MEASURED, "serve_tracing_ratio": 2.0}
        baseline = {"service": {"obs_overhead": {"overhead_ratio": 1.0}}}
        failures = mod.check(measured, baseline, tol=0.30, tol_seconds=0.60)
        assert len(failures) == 1
        assert "service.obs_overhead.overhead_ratio" in failures[0]

    def test_solver_guard_skips_when_not_measured(self, capsys):
        """MEASURED has no solvers dict (probe skipped): the solver guards
        must report a skip, not KeyError."""
        mod = _load_module()
        failures = mod.check(self.MEASURED, {}, tol=0.30, tol_seconds=0.60)
        assert failures == []
        out = capsys.readouterr().out
        assert "solvers.sss_numpy_speedup" in out
        assert "solver probe not measured" in out

    def test_solver_speedup_regression_detected(self):
        mod = _load_module()
        measured = {
            **self.MEASURED,
            "solvers": {"sss_numpy_speedup": 1.0, "sss_compiled_speedup": 2.0},
        }
        baseline = {
            "solvers": {"sss_numpy_speedup": 2.5, "sss_compiled_speedup": 20.0}
        }
        failures = mod.check(measured, baseline, tol=0.30, tol_seconds=0.60)
        assert len(failures) == 2
        assert any("sss_numpy_speedup" in f for f in failures)
        assert any("sss_compiled_speedup" in f for f in failures)

    def test_solver_compiled_guard_skips_without_compiled_backend(self, capsys):
        """numpy speedup measured but no compiled backend available: the
        compiled guard must skip even when its baseline exists."""
        mod = _load_module()
        measured = {**self.MEASURED, "solvers": {"sss_numpy_speedup": 2.5}}
        baseline = {
            "solvers": {"sss_numpy_speedup": 2.5, "sss_compiled_speedup": 20.0}
        }
        failures = mod.check(measured, baseline, tol=0.30, tol_seconds=0.60)
        assert failures == []
        out = capsys.readouterr().out
        assert "no compiled backend" in out

    def test_non_numeric_baseline_value_fails_not_crashes(self):
        mod = _load_module()
        baseline = {"vector_engine": {"single_sim": {"speedup": "fast!"}}}
        failures = mod.check(self.MEASURED, baseline, tol=0.30, tol_seconds=0.60)
        assert len(failures) == 1
        assert "not a number" in failures[0]

    def test_load_baseline_accepts_committed_file(self):
        mod = _load_module()
        baseline = mod.load_baseline(REPO / "BENCH_perf.json")
        assert isinstance(baseline, dict)

    def test_section_helper_tolerates_non_dict_levels(self):
        mod = _load_module()
        assert mod._section({"engine": "oops"}, "engine", "inner") == {}
        assert mod._section({}, "engine", "inner") == {}

    def test_load_baseline_rejects_sectionless(self, tmp_path):
        mod = _load_module()
        path = tmp_path / "b.json"
        path.write_text("{}")
        with pytest.raises(mod.BaselineError):
            mod.load_baseline(path)
