"""CLI surface of the observability layer: simulate output flags and the
``trace`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.obs.traceio import read_trace, validate_trace


SIM_BASE = [
    "simulate", "--workload", "C1", "--mesh", "4", "--algorithm", "global",
    "--warmup", "100", "--measure", "400",
]


def simulate_with_trace(tmp_path, *extra):
    trace_path = tmp_path / "t.jsonl"
    code = main(SIM_BASE + ["--trace-out", str(trace_path), *extra])
    assert code == 0
    return trace_path


class TestSimulateFlags:
    def test_all_outputs_written_and_valid(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        chrome = tmp_path / "c.json"
        metrics = tmp_path / "m.prom"
        series = tmp_path / "ts.csv"
        code = main(SIM_BASE + [
            "--trace-out", str(trace),
            "--chrome-trace", str(chrome),
            "--metrics-out", str(metrics),
            "--timeseries-out", str(series),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics" in out and "time series" in out

        assert validate_trace(read_trace(trace)) == []
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        prom = metrics.read_text()
        assert "# TYPE repro_packets_delivered_total counter" in prom
        assert "repro_packet_latency_cycles_bucket" in prom
        csv_lines = series.read_text().splitlines()
        assert csv_lines[0].startswith("cycle,window,")
        assert len(csv_lines) > 1

    def test_no_flags_means_no_observability(self, capsys, tmp_path):
        code = main(SIM_BASE)
        assert code == 0
        assert "trace:" not in capsys.readouterr().out

    def test_trace_sampling_flags(self, capsys, tmp_path):
        full = read_trace(simulate_with_trace(tmp_path))
        sampled_path = tmp_path / "s.jsonl"
        code = main(SIM_BASE + [
            "--trace-out", str(sampled_path), "--trace-every", "4",
        ])
        assert code == 0
        sampled = read_trace(sampled_path)
        assert sampled.header["trace_every"] == 4
        assert sampled.footer["packets_traced"] < full.footer["packets_traced"]
        assert sampled.footer["packets_submitted"] == full.footer["packets_submitted"]

    def test_trace_apps_filter(self, tmp_path):
        path = simulate_with_trace(tmp_path, "--trace-apps", "0,2")
        trace = read_trace(path)
        assert trace.header["trace_apps"] == [0, 2]
        submits = [e for e in trace.events if e["ev"] == "submit"]
        assert submits
        assert {e["app"] for e in submits} <= {0, 2}

    def test_trace_buffer_bounds_events(self, tmp_path):
        path = simulate_with_trace(tmp_path, "--trace-buffer", "32")
        trace = read_trace(path)
        assert len(trace.events) <= 32
        assert trace.footer["events_dropped"] > 0

    def test_same_seed_byte_identical_trace(self, tmp_path):
        a = simulate_with_trace(tmp_path)
        b_path = tmp_path / "b.jsonl"
        assert main(SIM_BASE + ["--trace-out", str(b_path)]) == 0
        assert a.read_bytes() == b_path.read_bytes()

    def test_bad_trace_apps_rejected(self):
        with pytest.raises(SystemExit):
            main(SIM_BASE + ["--trace-out", "/tmp/x.jsonl", "--trace-apps", "zero"])


class TestTraceSubcommand:
    def test_slowest_and_percentiles(self, capsys, tmp_path):
        path = simulate_with_trace(tmp_path)
        capsys.readouterr()
        code = main(["trace", str(path), "--slowest", "3", "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "traced packets" in out
        assert "p95" in out and "p99" in out
        assert out.count("packet ") == 3
        assert "tile" in out  # per-hop breakdown present

    def test_app_filter(self, capsys, tmp_path):
        path = simulate_with_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path), "--app", "1", "--slowest", "1"]) == 0
        out = capsys.readouterr().out
        assert "app 1" in out
        assert "app 0" not in out

    def test_chrome_conversion(self, capsys, tmp_path):
        path = simulate_with_trace(tmp_path)
        chrome = tmp_path / "c.json"
        assert main(["trace", str(path), "--slowest", "0", "--chrome", str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "M", "i"}

    def test_validate_rejects_corrupt_file(self, capsys, tmp_path):
        path = simulate_with_trace(tmp_path)
        lines = path.read_text().splitlines()
        event = json.loads(lines[1])
        event["ev"] = "warp"
        lines[1] = json.dumps(event)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        code = main(["trace", str(bad), "--validate"])
        assert code == 1
        assert "invalid" in capsys.readouterr().err
