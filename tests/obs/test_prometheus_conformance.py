"""Parser-based conformance checks of the Prometheus text exposition.

Rather than grepping for substrings, these tests run a small parser over
``render_prometheus`` output and assert the structural rules a real
Prometheus scraper relies on: one HELP/TYPE pair per family ahead of its
samples, families contiguous, histogram buckets cumulative with
ascending ``le`` ending in ``+Inf``, matching ``_sum``/``_count`` pairs,
and label-value escaping that survives a round-trip.
"""

from __future__ import annotations

import re

import pytest

from repro.obs.exporters import render_prometheus
from repro.obs.metrics import MetricsRegistry

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(text: str):
    """Parse into (families, samples); raises on malformed lines."""
    families: dict[str, dict] = {}
    samples: list[tuple[str, dict, float]] = []
    current: str | None = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {})["help"] = help_text
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            family = families.setdefault(name, {})
            assert "kind" not in family, f"duplicate TYPE for {name}"
            family["kind"] = kind
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment line {line_no}: {line}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line {line_no}: {line!r}"
        name = match["name"]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = base if base in families else name
        assert current is not None and family == current, (
            f"line {line_no}: sample {name} outside its family block "
            f"(current family {current})"
        )
        labels = dict()
        if match["labels"]:
            consumed = sum(
                len(m.group(0)) for m in _LABEL.finditer(match["labels"])
            )
            pairs = _LABEL.findall(match["labels"])
            assert consumed + len(pairs) - 1 == len(match["labels"]), (
                f"line {line_no}: malformed label block {match['labels']!r}"
            )
            labels = {k: unescape(v) for k, v in pairs}
        value = float("inf") if match["value"] == "+Inf" else float(match["value"])
        samples.append((name, labels, value))
    return families, samples


def histogram_series(samples, family: str):
    """Group one histogram family's samples by their non-le label set."""
    series: dict[tuple, dict] = {}
    for name, labels, value in samples:
        if not name.startswith(family + "_"):
            continue
        suffix = name[len(family) + 1 :]
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if suffix == "bucket":
            le = labels["le"]
            entry["buckets"].append(
                (float("inf") if le == "+Inf" else float(le), value)
            )
        elif suffix in ("sum", "count"):
            entry[suffix] = value
    return series


@pytest.fixture
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter("demo_requests_total", "requests served")
    requests.inc(7)
    registry.gauge("demo_ratio", "a gauge that starts at zero")
    latency = registry.histogram(
        "demo_seconds", "latency", bounds=(0.1, 0.5, 2.0), route="/map"
    )
    for v in (0.05, 0.3, 0.3, 1.0, 9.0):
        latency.observe(v)
    other = registry.histogram(
        "demo_seconds", bounds=(0.1, 0.5, 2.0), route="/healthz"
    )
    other.observe(0.2)
    return registry


class TestExpositionStructure:
    def test_every_line_parses_and_families_are_contiguous(self, registry):
        families, samples = parse_exposition(render_prometheus(registry))
        assert set(families) == {"demo_requests_total", "demo_ratio", "demo_seconds"}
        for family in families.values():
            assert family["kind"]

    def test_histogram_buckets_ascend_cumulatively_to_inf(self, registry):
        _, samples = parse_exposition(render_prometheus(registry))
        series = histogram_series(samples, "demo_seconds")
        assert len(series) == 2  # one per route label
        for entry in series.values():
            bounds = [b for b, _ in entry["buckets"]]
            counts = [c for _, c in entry["buckets"]]
            assert bounds == sorted(bounds)
            assert bounds[-1] == float("inf")
            assert counts == sorted(counts), "bucket counts must be cumulative"
            assert entry["count"] == counts[-1]
            assert entry["sum"] is not None

    def test_sum_and_count_match_observations(self, registry):
        _, samples = parse_exposition(render_prometheus(registry))
        series = histogram_series(samples, "demo_seconds")
        map_series = series[(("route", "/map"),)]
        assert map_series["count"] == 5
        assert map_series["sum"] == pytest.approx(0.05 + 0.3 + 0.3 + 1.0 + 9.0)
        # observations above the last finite bound live only in +Inf
        finite_top = [c for b, c in map_series["buckets"] if b == 2.0][0]
        assert map_series["buckets"][-1][1] - finite_top == 1

    def test_gauge_starts_at_zero_not_nan(self, registry):
        _, samples = parse_exposition(render_prometheus(registry))
        ratio = [v for n, _, v in samples if n == "demo_ratio"]
        assert ratio == [0.0]

    def test_label_values_escape_and_roundtrip(self):
        registry = MetricsRegistry()
        hairy = 'quote " backslash \\ newline \n done'
        registry.counter("demo_escapes_total", "backslash \\ and\nnewline",
                         detail=hairy).inc()
        text = render_prometheus(registry)
        assert "\n# " not in text.partition("# TYPE")[2]  # help newline escaped
        families, samples = parse_exposition(text)
        assert families["demo_escapes_total"]["help"] == "backslash \\\\ and\\nnewline"
        [(name, labels, value)] = samples
        assert labels["detail"] == hairy
        assert value == 1


class TestServiceMetricsConformance:
    def test_service_registry_scrape_parses_clean(self):
        """A traced service's real registry obeys every structural rule."""
        from repro.service.app import MappingService

        service = MappingService(trace=True, trace_clock="logical")
        families, samples = parse_exposition(render_prometheus(service.registry))
        assert "serve_request_seconds" in families
        series = histogram_series(samples, "serve_request_seconds")
        for entry in series.values():
            bounds = [b for b, _ in entry["buckets"]]
            assert bounds == sorted(bounds) and bounds[-1] == float("inf")
