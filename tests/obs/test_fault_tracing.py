"""Fault-path trace events: link up/down, reroute, drop/retry/loss spans."""

from __future__ import annotations

from repro.core.latency import Mesh
from repro.noc import (
    FaultConfig,
    FaultSchedule,
    LinkDownWindow,
    Network,
    Packet,
    Port,
    TrafficClass,
    UniformRandomTraffic,
)
from repro.obs.tracing import PacketTracer
from repro.obs.traceio import summarize
from repro.obs.exporters import write_trace_jsonl
from repro.obs.traceio import read_trace, validate_trace


def _packet(src, dst, created_at=0, length=1):
    return Packet(src=src, dst=dst, traffic_class=TrafficClass.CACHE_REQUEST,
                  created_at=created_at, length=length)


def _traced_net(schedule):
    tracer = PacketTracer()
    net = Network(Mesh.square(4), faults=schedule, tracer=tracer)
    return net, tracer


class TestLinkWindows:
    def test_link_down_up_events(self):
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(5, Port.EAST, 2, 10),)
        )
        net, tracer = _traced_net(schedule)
        for _ in range(20):
            net.step()
        kinds = [e["ev"] for e in tracer.events()]
        assert kinds.count("link_down") == 1
        assert kinds.count("link_up") == 1
        down = next(e for e in tracer.events() if e["ev"] == "link_down")
        assert (down["tile"], down["port"], down["t"]) == (5, "EAST", 2)

    def test_reroute_event_on_dead_link(self):
        # Packet 4 -> 6 wants EAST out of 4 then 5; kill 4:EAST so the head
        # flit must detour.
        schedule = FaultSchedule(link_windows=(LinkDownWindow(4, Port.EAST, 0, 100),))
        net, tracer = _traced_net(schedule)
        net.submit(_packet(4, 6, created_at=net.now))
        net.drain()
        reroutes = [e for e in tracer.events() if e["ev"] == "reroute"]
        assert reroutes
        assert reroutes[0]["tile"] == 4
        assert reroutes[0]["blocked"] == "EAST"
        assert reroutes[0]["port"] != "EAST"


class TestDropRetryLoss:
    def test_retry_events_recorded(self):
        schedule = FaultSchedule(
            config=FaultConfig(drop_rate=0.2, max_retries=50, seed=3)
        )
        net, tracer = _traced_net(schedule)
        for i in range(30):
            net.submit(_packet(0, 15, created_at=net.now, length=4))
            for _ in range(5):
                net.step()
        net.drain()
        stats = net.fault_stats
        events = list(tracer.events())
        retries = [e for e in events if e["ev"] == "retry"]
        teardowns = [e for e in events if e["ev"] == "teardown"]
        assert stats.packets_retried > 0  # the scenario exercised retries
        assert len(retries) == stats.packets_retried
        assert len(teardowns) == stats.packets_dropped

    def test_lost_packet_closes_span(self):
        schedule = FaultSchedule(
            config=FaultConfig(drop_rate=0.9, max_retries=1, seed=1)
        )
        net, tracer = _traced_net(schedule)
        for i in range(10):
            net.submit(_packet(0, 15, created_at=net.now, length=4))
        net.drain()
        stats = net.fault_stats
        lost = [e for e in tracer.events() if e["ev"] == "lost"]
        assert stats.packets_lost > 0
        assert len(lost) == stats.packets_lost
        for e in lost:
            assert e["retries"] >= 1

    def test_faulty_trace_survives_schema_and_summary(self, tmp_path):
        schedule = FaultSchedule(
            link_windows=(LinkDownWindow(5, Port.EAST, 10, 60),),
            config=FaultConfig(drop_rate=0.1, max_retries=3, seed=2),
        )
        tracer = PacketTracer()
        mesh = Mesh.square(4)
        traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, length=4, seed=5)
        net = Network(mesh, faults=schedule, tracer=tracer)
        for _ in range(300):
            for p in traffic.packets_for_cycle(net.now):
                net.submit(p)
            net.step()
        net.drain()
        path = write_trace_jsonl(tracer, tmp_path / "faulty.jsonl")
        trace = read_trace(path)
        assert validate_trace(trace) == []
        packets = summarize(trace)
        outcomes = {p.outcome for p in packets}
        assert "delivered" in outcomes
        # Retried packets report their retry count in the summary.
        assert all(p.retries >= 0 for p in packets)
