"""Tracer semantics: sampling, filtering, ring-buffer bounds, determinism."""

import pytest

from repro.core.latency import Mesh
from repro.noc.network import Network
from repro.noc.packet import Packet, TrafficClass
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import UniformRandomTraffic
from repro.obs import Observability, ObservabilityConfig, SamplerConfig, TraceConfig
from repro.obs.tracing import EVENT_FIELDS, PacketTracer


def traced_run(mesh_side=4, *, every=1, apps=None, buffer=262_144, seed=7,
               warmup=100, measure=500, rate=0.05):
    mesh = Mesh.square(mesh_side)
    traffic = UniformRandomTraffic(mesh.n_tiles, rate, length=4, seed=seed)
    obs = Observability(
        ObservabilityConfig(trace=TraceConfig(every=every, apps=apps, buffer=buffer))
    )
    sim = NoCSimulator(mesh, traffic, obs=obs)
    result = sim.run(warmup=warmup, measure=measure)
    return obs.tracer, result


class TestLifecycle:
    def test_every_traced_packet_has_full_span(self):
        tracer, _ = traced_run()
        events = list(tracer.events())
        submits = {e["id"] for e in events if e["ev"] == "submit"}
        ejects = {e["id"] for e in events if e["ev"] == "eject"}
        assert submits  # the run produced traffic
        assert ejects == submits  # drained run: every traced packet ejected

    def test_hop_count_matches_manhattan_distance(self):
        """XY routing: hops per packet == Manhattan distance + ejection."""
        mesh = Mesh.square(4)
        tracer = PacketTracer()
        net = Network(mesh, tracer=tracer)
        p = Packet(src=0, dst=15, traffic_class=TrafficClass.CACHE_REQUEST,
                   created_at=net.now)
        net.submit(p)
        net.drain()
        events = list(tracer.events())
        hops = [e for e in events if e["ev"] == "hop"]
        # 6 mesh hops: 3 EAST then 3 SOUTH; the final LOCAL ejection is
        # folded into the eject event, not a hop.
        assert [h["port"] for h in hops] == ["EAST"] * 3 + ["SOUTH"] * 3
        assert [h["tile"] for h in hops] == [0, 1, 2, 3, 7, 11]
        eject = [e for e in events if e["ev"] == "eject"]
        assert len(eject) == 1
        assert eject[0]["latency"] == p.latency

    def test_vc_alloc_events_present(self):
        tracer, _ = traced_run()
        kinds = {e["ev"] for e in tracer.events()}
        assert "vc_alloc" in kinds

    def test_event_fields_match_schema(self):
        tracer, _ = traced_run()
        for event in tracer.events():
            expected = ("ev", "t") + EVENT_FIELDS[event["ev"]]
            assert tuple(event) == expected


class TestSampling:
    def test_every_n_samples_a_fraction(self):
        all_tracer, _ = traced_run(every=1)
        sampled, _ = traced_run(every=4)
        assert sampled.packets_submitted == all_tracer.packets_submitted
        # Every 4th submission: ceil(n/4) traced.
        assert sampled.packets_traced == -(-all_tracer.packets_traced // 4)

    def test_app_filter(self):
        mesh = Mesh.square(4)
        tracer = PacketTracer(TraceConfig(apps=(1,)))
        net = Network(mesh, tracer=tracer)
        for app, dst in ((0, 5), (1, 6), (2, 7)):
            net.submit(Packet(src=0, dst=dst, app=app,
                              traffic_class=TrafficClass.CACHE_REQUEST,
                              created_at=net.now))
        net.drain()
        submits = [e for e in tracer.events() if e["ev"] == "submit"]
        assert [e["app"] for e in submits] == [1]
        assert tracer.packets_submitted == 3
        assert tracer.packets_traced == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TraceConfig(every=0)
        with pytest.raises(ValueError):
            TraceConfig(buffer=0)


class TestRingBuffer:
    def test_bounded_and_drop_accounted(self):
        tracer, _ = traced_run(buffer=64)
        assert tracer.events_retained <= 64
        assert tracer.events_dropped == tracer.events_total - tracer.events_retained
        assert tracer.events_dropped > 0  # this run overflows 64 events
        footer = tracer.footer()
        assert footer["events_dropped"] == tracer.events_dropped

    def test_large_buffer_drops_nothing(self):
        tracer, _ = traced_run()
        assert tracer.events_dropped == 0


class TestDeterminism:
    def test_same_seed_identical_events(self):
        a, _ = traced_run(seed=11)
        b, _ = traced_run(seed=11)
        assert list(a.events()) == list(b.events())
        assert a.header() == b.header()
        assert a.footer() == b.footer()

    def test_tracer_ids_are_run_local(self):
        """Ids restart at 0 every run, though Packet.pid keeps counting."""
        a, _ = traced_run(seed=11)
        first = next(iter(a.events()))
        assert first["ev"] == "submit"
        assert first["id"] == 0


class TestDisabledEquivalence:
    def test_tracing_does_not_change_results(self):
        mesh = Mesh.square(4)

        def run(obs):
            traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, length=4, seed=3)
            sim = NoCSimulator(mesh, traffic, obs=obs)
            return sim.run(warmup=100, measure=500)

        plain = run(None)
        traced = run(Observability(ObservabilityConfig(
            trace=TraceConfig(), sample=SamplerConfig(every=100))))
        assert traced.packets_delivered == plain.packets_delivered
        assert traced.cycles == plain.cycles
        assert traced.stats.g_apl() == plain.stats.g_apl()
        assert traced.stats.apl_by_app() == plain.stats.apl_by_app()
        assert traced.counts.flit_router_traversals == plain.counts.flit_router_traversals

    def test_coerce_forms(self):
        assert Observability.coerce(None) is None
        assert Observability.coerce(False) is None
        obs = Observability()
        assert Observability.coerce(obs) is obs
        assert Observability.coerce(True) is not None
        config = ObservabilityConfig(trace=TraceConfig())
        coerced = Observability.coerce(config)
        assert coerced is not None and coerced.tracer is not None
