"""Trace file reading, schema validation and lifecycle reconstruction."""

import json

import pytest

from repro.core.latency import Mesh
from repro.noc.network import Network
from repro.noc.packet import Packet, TrafficClass
from repro.obs.exporters import write_trace_jsonl
from repro.obs.tracing import PacketTracer, TraceConfig
from repro.obs.traceio import (
    HopRecord,
    format_packet,
    per_app_percentiles,
    read_trace,
    slowest,
    summarize,
    validate_trace,
)


def write_one_packet_trace(tmp_path, src=0, dst=15):
    mesh = Mesh.square(4)
    tracer = PacketTracer()
    net = Network(mesh, tracer=tracer)
    p = Packet(src=src, dst=dst, traffic_class=TrafficClass.CACHE_REQUEST,
               created_at=net.now)
    net.submit(p)
    net.drain()
    return write_trace_jsonl(tracer, tmp_path / "one.jsonl"), p


class TestReadValidate:
    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)

    def test_valid_trace_has_no_errors(self, tmp_path):
        path, _ = write_one_packet_trace(tmp_path)
        assert validate_trace(path) == []

    def test_detects_wrong_schema_and_missing_footer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"schema": "other", "version": 99}) + "\n")
        errors = validate_trace(path)
        assert any("schema" in e for e in errors)
        assert any("version" in e for e in errors)
        assert any("footer" in e for e in errors)

    def test_detects_bad_event_fields(self, tmp_path):
        good, _ = write_one_packet_trace(tmp_path)
        lines = good.read_text().splitlines()
        event = json.loads(lines[1])
        assert event["ev"] == "submit"
        event["src"] = "zero"  # must be an int
        lines[1] = json.dumps(event)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        errors = validate_trace(bad)
        assert any("'src'" in e for e in errors)

    def test_detects_time_going_backwards(self, tmp_path):
        good, _ = write_one_packet_trace(tmp_path)
        lines = good.read_text().splitlines()
        event = json.loads(lines[2])
        event["t"] = -5
        lines[2] = json.dumps(event)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert any("backwards" in e for e in validate_trace(bad))

    def test_detects_unknown_event_kind(self, tmp_path):
        good, _ = write_one_packet_trace(tmp_path)
        lines = good.read_text().splitlines()
        lines.insert(2, json.dumps({"ev": "warp", "t": 0}))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert any("unknown kind" in e for e in validate_trace(bad))


class TestSummarize:
    def test_reconstructs_full_route(self, tmp_path):
        path, packet = write_one_packet_trace(tmp_path, src=0, dst=15)
        packets = summarize(read_trace(path))
        assert len(packets) == 1
        pt = packets[0]
        assert pt.outcome == "delivered"
        assert pt.latency == packet.latency
        # XY route 0->15 on a 4x4 mesh: 3 EAST, 3 SOUTH, then ejection.
        assert [h.port for h in pt.hops] == ["EAST"] * 3 + ["SOUTH"] * 3 + ["LOCAL"]
        assert pt.hops[-1].tile == 15

    def test_hop_dwells_sum_to_latency(self, tmp_path):
        path, _ = write_one_packet_trace(tmp_path)
        trace = read_trace(path)
        link_latency = trace.header["link_latency"]
        pt = summarize(trace)[0]
        dwell_total = sum(h.dwell for h in pt.hops)
        links = (len(pt.hops) - 1) * link_latency
        assert dwell_total + links == pt.latency

    def test_queue_wait_is_first_departure_delta(self, tmp_path):
        path, _ = write_one_packet_trace(tmp_path)
        pt = summarize(read_trace(path))[0]
        assert pt.queue_wait == pt.hops[0].departed - pt.created

    def test_hop_record_dwell(self):
        hop = HopRecord(tile=3, port="EAST", vc=0, arrived=10, departed=14)
        assert hop.dwell == 4


class TestAnalysis:
    def _packets(self, latencies, app=0):
        from repro.obs.traceio import PacketTrace

        out = []
        for i, lat in enumerate(latencies):
            p = PacketTrace(id=i, src=0, dst=1, app=app, cls="CACHE_REQUEST",
                            length=1, created=0)
            p.latency = lat
            p.outcome = "delivered"
            out.append(p)
        return out

    def test_slowest_sorts_and_breaks_ties_by_id(self):
        packets = self._packets([5, 9, 9, 1])
        top = slowest(packets, 3)
        assert [(p.latency, p.id) for p in top] == [(9, 1), (9, 2), (5, 0)]

    def test_slowest_skips_undelivered(self):
        packets = self._packets([5, 7])
        packets[0].latency = None
        assert [p.id for p in slowest(packets, 5)] == [1]

    def test_per_app_percentiles_exact(self):
        packets = self._packets(list(range(1, 101)))
        stats = per_app_percentiles(packets)[0]
        assert stats["count"] == 100
        assert stats["p50"] == pytest.approx(50.5)
        assert stats["p95"] == pytest.approx(95.05)
        assert stats["max"] == 100.0

    def test_per_app_percentiles_singleton(self):
        stats = per_app_percentiles(self._packets([42]))[0]
        assert stats["p50"] == 42.0
        assert stats["p99"] == 42.0

    def test_format_packet_mentions_every_hop(self, tmp_path):
        path, _ = write_one_packet_trace(tmp_path)
        pt = summarize(read_trace(path))[0]
        text = format_packet(pt)
        assert "delivered" in text
        assert text.count("tile") == len(pt.hops)
