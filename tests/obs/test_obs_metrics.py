"""Unit tests of the metric primitives and registry."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_buckets,
)


class TestBuckets:
    def test_default_layout(self):
        assert LATENCY_BUCKETS[0] == 1.0
        assert LATENCY_BUCKETS[-1] == pytest.approx(8192.0)
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        # 2 per octave over 13 octaves, endpoints inclusive.
        assert len(LATENCY_BUCKETS) == 27

    def test_custom_layout(self):
        bounds = latency_buckets(1.0, 8.0, per_octave=1)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_invalid_layouts(self):
        with pytest.raises(ValueError):
            latency_buckets(0.0, 8.0)
        with pytest.raises(ValueError):
            latency_buckets(8.0, 4.0)
        with pytest.raises(ValueError):
            latency_buckets(1.0, 8.0, per_octave=0)


class TestCounterGauge:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set(self):
        g = Gauge("y")
        g.set(3.5)
        assert g.value == 3.5
        g.set(-1.0)
        assert g.value == -1.0


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        h.observe_many([0.5, 1.5, 3.0, 100.0])
        assert h.total == 4
        assert h.counts == [1, 1, 1, 1]  # last is the overflow bucket
        assert h.mean == pytest.approx(105.0 / 4)

    def test_quantiles_interpolate(self):
        h = Histogram("h", bounds=(10.0, 20.0))
        for _ in range(100):
            h.observe(15.0)  # all land in the (10, 20] bucket
        # Any quantile interpolates within that bucket.
        assert 10.0 <= h.quantile(0.5) <= 20.0
        assert h.quantile(0.0) == pytest.approx(10.0)

    def test_quantile_overflow_clamps(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_quantile_validation(self):
        h = Histogram("h", bounds=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(0.5)  # empty
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_percentiles_triple(self):
        h = Histogram("h")
        h.observe_many(range(1, 101))
        p = h.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_merge(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.total == 3
        assert a.counts == [1, 1, 1]
        assert a.sum == pytest.approx(7.0)

    def test_merge_rejects_different_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 4.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", app="1")
        b = reg.counter("hits", app="1")
        c = reg.counter("hits", app="2")
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", app="1", cls="req")
        b = reg.counter("x", cls="req", app="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.gauge("x", app="1")

    def test_iteration_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", app="2")
        reg.counter("a", app="1")
        names = [(m.name, m.labels) for m in reg]
        assert names == sorted(names)

    def test_as_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c", help="count").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        d = reg.as_dict()
        assert d["c"][0]["value"] == 3
        assert d["g"][0]["value"] == 1.5
        assert d["h"][0]["count"] == 1
        assert d["h"][0]["buckets"] == [(1.0, 0), (2.0, 1)]
        assert d["h"][0]["overflow"] == 0

    def test_help_for(self):
        reg = MetricsRegistry()
        reg.counter("c", help="first wins")
        reg.counter("c", app="1")
        assert reg.help_for("c") == "first wins"
        assert reg.help_for("missing") == ""
