"""Exporter formats: JSONL round-trip, Chrome trace shape, Prometheus text,
CSV time-series — and byte-identical determinism across same-seed runs."""

import json

import pytest

from repro.core.latency import Mesh
from repro.noc.simulator import NoCSimulator
from repro.noc.traffic import UniformRandomTraffic
from repro.obs import Observability, ObservabilityConfig, SamplerConfig, TraceConfig
from repro.obs.exporters import (
    chrome_trace_events,
    render_prometheus,
    write_chrome_trace,
    write_prometheus,
    write_timeseries_csv,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.traceio import read_trace, validate_trace


@pytest.fixture(scope="module")
def run():
    mesh = Mesh.square(4)
    traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, length=4, seed=7)
    obs = Observability(
        ObservabilityConfig(trace=TraceConfig(), sample=SamplerConfig(every=100))
    )
    sim = NoCSimulator(mesh, traffic, obs=obs)
    result = sim.run(warmup=100, measure=500)
    return obs, result


class TestJsonl:
    def test_round_trip_and_schema(self, run, tmp_path):
        obs, _ = run
        path = write_trace_jsonl(obs.tracer, tmp_path / "t.jsonl")
        trace = read_trace(path)
        assert validate_trace(trace) == []
        assert trace.header["schema"] == "repro-noc-trace"
        assert len(trace.events) == obs.tracer.events_retained
        assert trace.footer["packets_traced"] == obs.tracer.packets_traced

    def test_byte_identical_same_seed(self, tmp_path):
        def one(path):
            mesh = Mesh.square(4)
            traffic = UniformRandomTraffic(mesh.n_tiles, 0.05, length=4, seed=9)
            obs = Observability(ObservabilityConfig(trace=TraceConfig()))
            NoCSimulator(mesh, traffic, obs=obs).run(warmup=100, measure=400)
            return write_trace_jsonl(obs.tracer, path).read_bytes()

        assert one(tmp_path / "a.jsonl") == one(tmp_path / "b.jsonl")


class TestChromeTrace:
    def test_document_shape(self, run, tmp_path):
        obs, _ = run
        path = write_chrome_trace(
            obs.tracer.header(), list(obs.tracer.events()), tmp_path / "c.json"
        )
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "M", "i"}
        assert any(e["ph"] == "X" for e in events)

    def test_router_spans_chain_across_the_route(self, run):
        obs, _ = run
        events = chrome_trace_events(obs.tracer.header(), list(obs.tracer.events()))
        spans = [e for e in events if e["ph"] == "X" and e["cat"] == "hop"]
        assert spans
        by_name: dict = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        link_latency = obs.tracer.meta["link_latency"]
        for name, chain in by_name.items():
            for prev, nxt in zip(chain, chain[1:]):
                # Next residency starts one link after the previous departure.
                assert nxt["ts"] == prev["ts"] + prev["dur"] + link_latency
                assert nxt["tid"] != prev["tid"]

    def test_app_spans_cover_latency(self, run):
        obs, _ = run
        events = chrome_trace_events(obs.tracer.header(), list(obs.tracer.events()))
        app_spans = [e for e in events if e["ph"] == "X" and e.get("cat") != "hop"]
        ejects = {
            e["id"]: e for e in obs.tracer.events() if e["ev"] == "eject"
        }
        assert len(app_spans) == len(ejects)
        for span in app_spans:
            assert span["args"]["outcome"] == "eject"

    def test_metadata_tracks(self, run):
        obs, _ = run
        events = chrome_trace_events(obs.tracer.header(), list(obs.tracer.events()))
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {"routers", "applications"}


class TestPrometheus:
    def test_counter_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total", help="a test counter", app="1").inc(3)
        reg.gauge("repro_test_ratio").set(0.5)
        text = render_prometheus(reg)
        assert "# HELP repro_test_total a test counter" in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{app="1"} 3' in text
        assert "repro_test_ratio 0.5" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", bounds=(1.0, 2.0), app="0")
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = render_prometheus(reg)
        assert 'repro_lat_bucket{app="0",le="1"} 1' in text
        assert 'repro_lat_bucket{app="0",le="2"} 2' in text
        assert 'repro_lat_bucket{app="0",le="+Inf"} 3' in text
        assert 'repro_lat_count{app="0"} 3' in text
        assert 'repro_lat_sum{app="0"} 11' in text

    def test_full_run_registry_renders(self, run, tmp_path):
        obs, result = run
        path = write_prometheus(obs.registry, tmp_path / "m.prom")
        text = path.read_text()
        assert f"repro_packets_delivered_total {result.packets_delivered}" in text
        assert "repro_packet_latency_cycles_bucket" in text
        # One TYPE line per family, even with several children.
        assert text.count("# TYPE repro_packet_latency_cycles histogram") == 1


class TestTimeseriesCsv:
    def test_csv_shape(self, run, tmp_path):
        obs, _ = run
        path = write_timeseries_csv(obs.sampler, tmp_path / "ts.csv")
        lines = path.read_text().splitlines()
        header = lines[0].split(",")
        assert header[:2] == ["cycle", "window"]
        assert any(h.startswith("util_") for h in header)
        assert len(lines) == 1 + obs.sampler.n_samples
        for line in lines[1:]:
            assert len(line.split(",")) == len(header)

    def test_windows_partition_the_run(self, run):
        obs, _ = run
        cols = obs.sampler.columns
        # Sample windows tile the run contiguously from the first sample on.
        for prev, nxt, window in zip(cols["cycle"], cols["cycle"][1:], cols["window"][1:]):
            assert nxt - prev == window
        # The run drained without faults, so windowed injections and
        # ejections both telescope to the same network-lifetime total.
        assert sum(cols["flits_injected"]) == sum(cols["flits_ejected"])
        assert sum(cols["flits_dropped"]) == 0
        assert cols["in_flight_flits"][-1] == 0  # final sample is post-drain
