"""The request-span tracer: propagation, determinism, bounded buffers."""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading

import pytest

from repro.obs.exporters import chrome_trace_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.reqtrace import NOOP_SPAN, SpanTracer
from repro.obs import reqtrace
from repro.obs.traceio import (
    TraceFile,
    format_span_tree,
    spans_by_trace,
    trace_file_kind,
    validate_trace,
)


def trace_file(tracer: SpanTracer) -> TraceFile:
    return TraceFile(
        header=tracer.header(),
        events=list(tracer.events()),
        footer=tracer.footer(),
    )


class TestDisabledPath:
    def test_span_outside_a_trace_is_the_shared_noop(self):
        s = reqtrace.span("anything", key="value")
        assert s is NOOP_SPAN
        with s as entered:
            assert entered is NOOP_SPAN
            entered.set(more="attrs")  # must not raise

    def test_helpers_are_noops_outside_a_trace(self):
        assert not reqtrace.is_active()
        assert reqtrace.current_trace_id() is None
        reqtrace.annotate(k=1)
        reqtrace.note("retries")
        reqtrace.count("some_counter", 3)
        reqtrace.observe("some_histogram", 0.5)


class TestSpanNesting:
    def test_children_parent_under_the_enclosing_span(self):
        tracer = SpanTracer(clock="logical")
        with tracer.trace("serve.request") as ctx:
            with reqtrace.span("outer"):
                with reqtrace.span("inner"):
                    pass
            with reqtrace.span("sibling"):
                pass
        spans = {s["name"]: s for s in ctx.spans}
        root = spans["serve.request"]
        assert root["parent_span"] == -1
        assert spans["outer"]["parent_span"] == root["span_id"]
        assert spans["inner"]["parent_span"] == spans["outer"]["span_id"]
        assert spans["sibling"]["parent_span"] == root["span_id"]

    def test_exception_is_recorded_and_propagates(self):
        tracer = SpanTracer(clock="logical")
        with pytest.raises(RuntimeError):
            with tracer.trace("serve.request") as ctx:
                with reqtrace.span("failing"):
                    raise RuntimeError("boom")
        spans = {s["name"]: s for s in ctx.spans}
        assert spans["failing"]["attrs"]["error"] == "RuntimeError"
        assert spans["serve.request"]["attrs"]["error"] == "RuntimeError"

    def test_annotate_and_note_land_on_the_context(self):
        tracer = SpanTracer(clock="logical")
        with tracer.trace("serve.request") as ctx:
            reqtrace.annotate(cache="hit")
            reqtrace.note("retries")
            reqtrace.note("retries")
        assert ctx.root_attrs["cache"] == "hit"
        assert ctx.notes == {"retries": 2}

    def test_set_attaches_attributes_visible_in_the_event(self):
        tracer = SpanTracer(clock="logical")
        with tracer.trace() as ctx:
            with reqtrace.span("phase") as s:
                s.set(windows=7)
        spans = {s["name"]: s for s in ctx.spans}
        assert spans["phase"]["attrs"] == {"windows": 7}


class TestPropagation:
    def test_spans_nest_across_asyncio_create_task(self):
        tracer = SpanTracer(clock="logical")

        async def child() -> None:
            with reqtrace.span("task.child"):
                await asyncio.sleep(0)

        async def scenario() -> None:
            with tracer.trace("serve.request"):
                with reqtrace.span("spawner"):
                    task = asyncio.get_running_loop().create_task(child())
                await task

        asyncio.run(scenario())
        spans = {
            s["name"]: s for g in spans_by_trace(trace_file(tracer)).values() for s in g
        }
        assert spans["task.child"]["parent_span"] == spans["spawner"]["span_id"]

    def test_spans_nest_into_worker_threads_via_copied_context(self):
        tracer = SpanTracer(clock="logical")

        def worker() -> None:
            with reqtrace.span("thread.work"):
                pass

        with tracer.trace("serve.request") as ctx:
            with reqtrace.span("dispatch"):
                call_ctx = contextvars.copy_context()
                thread = threading.Thread(target=call_ctx.run, args=(worker,))
                thread.start()
                thread.join()
        spans = {s["name"]: s for s in ctx.spans}
        assert spans["thread.work"]["parent_span"] == spans["dispatch"]["span_id"]

    def test_concurrent_traces_keep_separate_identities(self):
        tracer = SpanTracer(clock="logical")

        async def request(tag: str) -> None:
            with tracer.trace("serve.request", tag=tag):
                with reqtrace.span("inner", tag=tag):
                    await asyncio.sleep(0)

        async def scenario() -> None:
            await asyncio.gather(request("a"), request("b"), request("c"))

        asyncio.run(scenario())
        groups = spans_by_trace(trace_file(tracer))
        assert sorted(groups) == [0, 1, 2]
        for spans in groups.values():
            tags = {s["attrs"]["tag"] for s in spans}
            assert len(tags) == 1  # no cross-trace bleed


class TestDeterminism:
    @staticmethod
    def run_burst(tracer: SpanTracer) -> None:
        for k in range(3):
            with tracer.trace("serve.request", index=k):
                with reqtrace.span("solve"):
                    with reqtrace.span("phase", step=k):
                        pass

    def test_logical_clock_output_is_byte_identical(self):
        streams = []
        for _ in range(2):
            tracer = SpanTracer(clock="logical")
            self.run_burst(tracer)
            t = trace_file(tracer)
            streams.append(
                "\n".join(
                    json.dumps(obj, sort_keys=True)
                    for obj in [t.header, *t.events, t.footer]
                )
            )
        assert streams[0] == streams[1]

    def test_wall_clock_is_microseconds_and_monotone(self):
        tracer = SpanTracer(clock="wall")
        self.run_burst(tracer)
        events = list(tracer.events())
        times = [e["t"] for e in events]
        assert times == sorted(times)
        assert all(isinstance(e["t"], int) and e["dur"] >= 0 for e in events)


class TestBoundedMemory:
    def test_ring_buffer_drops_oldest_events(self):
        tracer = SpanTracer(buffer=4, clock="logical")
        for k in range(6):
            with tracer.trace("serve.request", index=k):
                pass
        assert tracer.events_retained == 4
        assert tracer.events_dropped == 2
        kept = [e["trace_id"] for e in tracer.events()]
        assert kept == [2, 3, 4, 5]
        assert tracer.footer()["events_dropped"] == 2

    def test_flight_recorder_copy_is_bounded_per_trace(self):
        tracer = SpanTracer(clock="logical", max_spans_per_trace=3)
        with tracer.trace("serve.request") as ctx:
            for k in range(5):
                with reqtrace.span("phase", index=k):
                    pass
        # two phases dropped; the root itself no longer fits
        assert len(ctx.spans) == 3
        assert ctx.spans_dropped == 3
        # the ring buffer still holds everything
        assert tracer.events_retained == 6


class TestExportSurface:
    def test_jsonl_roundtrip_validates_as_schema_v2(self, tmp_path):
        from repro.obs.exporters import write_trace_jsonl
        from repro.obs.traceio import read_trace

        tracer = SpanTracer(clock="logical")
        TestDeterminism.run_burst(tracer)
        path = write_trace_jsonl(tracer, tmp_path / "spans.jsonl")
        trace = read_trace(path)
        assert validate_trace(trace) == []
        assert trace_file_kind(trace) == "spans"
        assert trace.header["version"] == 2

    def test_chrome_conversion_emits_complete_events_per_trace(self):
        tracer = SpanTracer(clock="logical")
        TestDeterminism.run_burst(tracer)
        t = trace_file(tracer)
        events = chrome_trace_events(t.header, t.events)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 9  # 3 requests x 3 spans
        assert {e["tid"] for e in complete} == {0, 1, 2}
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_format_span_tree_indents_by_depth(self):
        tracer = SpanTracer(clock="logical")
        TestDeterminism.run_burst(tracer)
        groups = spans_by_trace(trace_file(tracer))
        lines = format_span_tree(groups[0])
        assert lines[0].startswith("serve.request")
        assert lines[1].startswith("  solve")
        assert lines[2].startswith("    phase")


class TestRegistryIntegration:
    def test_span_durations_feed_the_span_histogram(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(clock="logical", registry=registry)
        with tracer.trace("serve.request"):
            with reqtrace.span("solve"):
                pass
        snapshot = registry.as_dict()["trace_span_seconds"]
        by_span = {entry["labels"]["span"]: entry for entry in snapshot}
        assert by_span["solve"]["count"] == 1
        assert by_span["serve.request"]["count"] == 1

    def test_count_and_observe_reach_the_registry_only_inside_a_trace(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(clock="logical", registry=registry)
        reqtrace.count("solver_iterations_total", 5, solver="mc")
        assert "solver_iterations_total" not in registry.as_dict()
        with tracer.trace("serve.request"):
            reqtrace.count("solver_iterations_total", 5, solver="mc")
            reqtrace.observe("solver_bound_gap", 0.25, bounds=(0.1, 0.5, 1.0))
        snap = registry.as_dict()
        assert snap["solver_iterations_total"][0]["value"] == 5
        assert snap["solver_bound_gap"][0]["count"] == 1


def random_instance(seed: int, n: int = 4, n_apps: int = 2):
    import numpy as np

    from repro.core.latency import Mesh, MeshLatencyModel
    from repro.core.problem import OBMInstance
    from repro.core.workload import Application, Workload

    rng = np.random.default_rng(seed)
    model = MeshLatencyModel(Mesh.square(n))
    per_app = model.n_tiles // n_apps
    apps = tuple(
        Application(
            f"a{i}", rng.uniform(0.1, 5, per_app), rng.uniform(0.0, 1, per_app)
        )
        for i in range(n_apps)
    )
    return OBMInstance(model, Workload(apps))


class TestSolverInstrumentation:
    def test_sss_emits_phase_spans_and_swap_counters(self):
        from repro.core.sss import sort_select_swap

        instance = random_instance(7)
        registry = MetricsRegistry()
        tracer = SpanTracer(clock="logical", registry=registry)
        with tracer.trace("serve.request") as ctx:
            result = sort_select_swap(instance)
        names = [s["name"] for s in ctx.spans]
        for phase in ("sss.sort", "sss.select", "sss.swap", "sss.polish"):
            assert phase in names, names
        swaps = result.extra["swap_windows"]
        counted = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in registry.as_dict()["sss_swap_windows_total"]
        }
        assert counted["accepted"] == swaps["accepted"]
        assert counted["accepted"] + counted["rejected"] == swaps["tried"]

    def test_solver_results_are_identical_with_tracing_on(self):
        from repro.core.sss import sort_select_swap

        instance = random_instance(7)
        baseline = sort_select_swap(instance)
        tracer = SpanTracer(clock="logical")
        with tracer.trace("serve.request"):
            traced = sort_select_swap(instance)
        assert traced.mapping.perm.tolist() == baseline.mapping.perm.tolist()
        assert traced.evaluation.max_apl == baseline.evaluation.max_apl
