"""Tests of RNG plumbing and text rendering."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, permutation_from, spawn_rngs, stable_seed, weighted_choice
from repro.utils.text import format_percent, format_table, grid_to_text, heatmap_to_text


class TestRng:
    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_int_deterministic(self):
        assert as_rng(5).integers(1000) == as_rng(5).integers(1000)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_spawn_independent(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_deterministic(self):
        xs = [g.integers(10**9) for g in spawn_rngs(3, 4)]
        ys = [g.integers(10**9) for g in spawn_rngs(3, 4)]
        assert xs == ys

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_stable_seed_distinct_labels(self):
        assert stable_seed("a") != stable_seed("b")
        assert stable_seed("x", 1) == stable_seed("x", 1)

    def test_permutation_from(self):
        p = permutation_from(as_rng(0), 10)
        assert sorted(p.tolist()) == list(range(10))

    def test_weighted_choice(self):
        rng = as_rng(0)
        picks = [weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(20)]
        assert all(p == "b" for p in picks)

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            weighted_choice(as_rng(0), ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(as_rng(0), ["a"], [0.0])


class TestText:
    def test_format_table_alignment(self):
        text = format_table(["x", "longer"], [[1, 2.5], [10, 3.25]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all rows same width

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_grid_to_text(self):
        text = grid_to_text(np.array([[1, 2], [3, 4]]))
        assert text == "1 2\n3 4"

    def test_grid_requires_2d(self):
        with pytest.raises(ValueError):
            grid_to_text(np.arange(4))

    def test_heatmap_extremes(self):
        text = heatmap_to_text(np.array([[0.0, 1.0]]), legend=False)
        assert text[0] == " " and text[-1] == "@"

    def test_heatmap_constant(self):
        text = heatmap_to_text(np.zeros((2, 2)), legend=False)
        assert set(text.replace("\n", "")) == {" "}

    def test_heatmap_requires_2d(self):
        with pytest.raises(ValueError):
            heatmap_to_text(np.arange(4))

    def test_format_percent(self):
        assert format_percent(0.1042) == "+10.42%"
        assert format_percent(-0.05) == "-5.00%"
        assert format_percent(0.5, signed=False) == "50.00%"
