"""Tests of the mapping-layout analysis module."""

import numpy as np
import pytest

from repro.analysis import (
    compare_results,
    corner_occupants,
    dispersion_by_app,
    placement_stats,
)
from repro.core.baselines import global_mapping
from repro.core.problem import Mapping
from repro.core.sss import sort_select_swap


class TestPlacementStats:
    def test_stats_cover_active_apps(self, c1_instance):
        stats = placement_stats(c1_instance, Mapping(np.arange(c1_instance.n)))
        assert len(stats) == 4
        for s in stats:
            assert s.n_tiles == 16
            assert s.min_tc <= s.mean_tc <= s.max_tc
            assert s.dispersion > 0

    def test_idle_apps_skipped(self, small_instance):
        # small_instance has no padding; build one that does.
        from repro.core.latency import Mesh, MeshLatencyModel
        from repro.core.problem import OBMInstance
        from repro.core.workload import Application, Workload

        inst = OBMInstance(
            MeshLatencyModel(Mesh.square(4)),
            Workload((Application("a", np.ones(8), np.ones(8) * 0.1),)),
        )
        stats = placement_stats(inst, Mapping(np.arange(16)))
        assert [s.name for s in stats] == ["a"]

    def test_global_parks_light_app_on_worse_tiles(self, c1_instance):
        """Quantified Figure-4 reading: under Global the lightest app's
        mean TC exceeds the heaviest app's."""
        glob = global_mapping(c1_instance)
        stats = {s.app_index: s for s in placement_stats(c1_instance, glob.mapping)}
        assert stats[0].mean_tc > stats[3].mean_tc  # apps sorted by traffic

    def test_sss_equalises_tile_quality(self, c1_instance):
        sss = sort_select_swap(c1_instance)
        stats = placement_stats(c1_instance, sss.mapping)
        mean_tcs = [s.mean_tc for s in stats]
        assert max(mean_tcs) - min(mean_tcs) < 1.0


class TestCornerOccupants:
    def test_four_corners(self, c1_instance):
        occ = corner_occupants(c1_instance, Mapping(np.arange(c1_instance.n)))
        assert len(occ) == 4
        assert all(0 <= a < 4 for a in occ)

    def test_identity_mapping_corners(self, c1_instance):
        # With identity mapping, tile 0 hosts thread 0 (app 0), tile 63
        # hosts thread 63 (app 3).
        occ = corner_occupants(c1_instance, Mapping(np.arange(64)))
        assert occ[0] == 0
        assert occ[3] == 3


class TestDispersion:
    def test_contiguous_block_less_dispersed_than_spread(self, c1_instance):
        mesh = c1_instance.mesh
        # App 0's 16 threads on a compact 4x4 block vs scattered stripes.
        block = [mesh.tile(r, c) for r in range(4) for c in range(4)]
        rest = [t for t in range(64) if t not in block]
        compact = Mapping(np.array(block + rest))
        stripes = Mapping(np.arange(64).reshape(16, 4).T.reshape(-1))
        d_compact = dispersion_by_app(c1_instance, compact)[0]
        d_stripes = dispersion_by_app(c1_instance, stripes)[0]
        assert d_compact < d_stripes


class TestCompareResults:
    def test_renders_all_algorithms_and_apps(self, c1_instance):
        results = {
            "Global": global_mapping(c1_instance),
            "SSS": sort_select_swap(c1_instance),
        }
        text = compare_results(c1_instance, results)
        assert "max-APL" in text
        assert "Global" in text and "SSS" in text
        for app in c1_instance.workload.applications:
            if app.total_rate > 0:
                assert app.name in text
